"""Engine throughput — how fast the substrate simulates.

Not a paper artifact, but the harness everything else stands on: these
benchmarks time full simulations (hyperperiod, priority inheritance,
ceiling checks, serializability audit) so regressions in the engine's hot
paths are visible.
"""

from benchmarks.conftest import simulate
from repro.db.serializability import check_serializable
from repro.engine.simulator import SimConfig, Simulator
from repro.protocols import make_protocol
from repro.workloads.generator import WorkloadConfig, generate_taskset

_TASKSET = generate_taskset(
    WorkloadConfig(
        n_transactions=8, n_items=10, write_probability=0.4,
        hot_access_probability=0.7, target_utilization=0.65, seed=7,
    )
)


def test_throughput_pcp_da_hyperperiod(benchmark):
    result = benchmark(
        lambda: Simulator(_TASKSET, make_protocol("pcp-da"), SimConfig()).run()
    )
    assert result.committed_jobs


def test_throughput_rw_pcp_hyperperiod(benchmark):
    result = benchmark(
        lambda: Simulator(_TASKSET, make_protocol("rw-pcp"), SimConfig()).run()
    )
    assert result.committed_jobs


def test_throughput_serializability_check(benchmark):
    result = Simulator(_TASKSET, make_protocol("pcp-da"), SimConfig()).run()
    graph = benchmark(lambda: check_serializable(result.history))
    assert graph.is_acyclic()


def test_throughput_long_horizon(benchmark):
    """A 10x-hyperperiod run: event-queue and dispatcher scaling."""
    config = SimConfig(horizon=4800.0)
    result = benchmark.pedantic(
        lambda: Simulator(_TASKSET, make_protocol("pcp-da"), config).run(),
        rounds=3, iterations=1,
    )
    assert len(result.jobs) > 50
