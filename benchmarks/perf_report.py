"""Standing perf-regression harness: measure engine throughput, emit BENCH JSON.

``make bench`` runs this after the pytest-benchmark files and writes
``BENCH_<date>.json`` at the repo root — the ledger future perf PRs are
judged against.  ``make bench-smoke`` (wired into ``make verify``) runs the
``--smoke`` variant: a tiny deterministic workload that finishes in a couple
of seconds and validates the emitted document against
:func:`validate_bench_document`, so the harness itself cannot silently rot.

The measured quantity is simulator throughput — processed calendar events
per second (and its inverse, ns/event) — per protocol and in aggregate,
over a fixed seeded workload grid.  Event counts are deterministic; wall
times obviously are not.

Usage::

    PYTHONPATH=src python benchmarks/perf_report.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import platform
import sys
import time
from typing import Any, Dict, List, Optional

from repro.engine.simulator import SimConfig, Simulator
from repro.protocols import make_protocol
from repro.workloads.generator import WorkloadConfig, generate_taskset

SCHEMA = "repro-bench/1"

#: Protocols timed individually (the paper's protocol plus the principal
#: comparators; covers both install policies and the early-unlock path).
PROTOCOLS = ("pcp-da", "rw-pcp", "ccp", "pcp", "ipcp", "pip-2pl", "2pl", "occ-bc")

_RESULT_FIELDS = {
    "benchmark": str,
    "protocol": str,
    "runs": int,
    "events": int,
    "wall_s": float,
    "events_per_sec": float,
    "ns_per_event": float,
}


def _workloads(smoke: bool):
    """The fixed measurement grid (deterministic, seeded)."""
    if smoke:
        grid = [dict(n_transactions=4, n_items=6, write_probability=0.4,
                     hot_access_probability=0.7, target_utilization=0.5, seed=7)]
    else:
        grid = [
            dict(n_transactions=8, n_items=10, write_probability=0.4,
                 hot_access_probability=0.7, target_utilization=0.65, seed=7),
            dict(n_transactions=12, n_items=14, write_probability=0.3,
                 hot_access_probability=0.6, target_utilization=0.7, seed=21),
        ]
    return [generate_taskset(WorkloadConfig(**params)) for params in grid]


def _events_of(sim: Simulator) -> int:
    return sim.events_processed


def measure(smoke: bool) -> List[Dict[str, Any]]:
    """Time every protocol over the grid; one result row per protocol."""
    tasksets = _workloads(smoke)
    repeats = 1 if smoke else 3
    horizon_factor = 1 if smoke else 4
    rows: List[Dict[str, Any]] = []
    for protocol in PROTOCOLS:
        events = 0
        wall = 0.0
        runs = 0
        for taskset in tasksets:
            hp = taskset.hyperperiod()
            config = SimConfig(
                deadlock_action="abort_lowest",
                horizon=None if hp is None else hp * horizon_factor,
            )
            for _ in range(repeats):
                sim = Simulator(taskset, make_protocol(protocol), config)
                t0 = time.perf_counter()
                sim.run()
                wall += time.perf_counter() - t0
                events += _events_of(sim)
                runs += 1
        rows.append({
            "benchmark": "simulator_throughput",
            "protocol": protocol,
            "runs": runs,
            "events": events,
            "wall_s": wall,
            "events_per_sec": events / wall if wall else 0.0,
            "ns_per_event": (wall / events) * 1e9 if events else 0.0,
        })
    return rows


def build_document(smoke: bool) -> Dict[str, Any]:
    """Measure and assemble the full BENCH document."""
    rows = measure(smoke)
    total_events = sum(r["events"] for r in rows)
    total_wall = sum(r["wall_s"] for r in rows)
    return {
        "schema": SCHEMA,
        "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": rows,
        "totals": {
            "events": total_events,
            "wall_s": total_wall,
            "events_per_sec": total_events / total_wall if total_wall else 0.0,
            "ns_per_event": (total_wall / total_events) * 1e9 if total_events else 0.0,
        },
    }


def validate_bench_document(doc: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed BENCH document."""
    if not isinstance(doc, dict):
        raise ValueError("document must be a JSON object")
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    for key in ("generated_at", "mode", "python", "platform"):
        if not isinstance(doc.get(key), str):
            raise ValueError(f"missing or non-string field {key!r}")
    if doc["mode"] not in ("smoke", "full", "stress"):
        raise ValueError(f"mode must be smoke|full|stress, got {doc['mode']!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        raise ValueError("results must be a non-empty list")
    for row in results:
        for field, kind in _RESULT_FIELDS.items():
            value = row.get(field)
            if kind is float:
                ok = isinstance(value, (int, float)) and not isinstance(value, bool)
            else:
                ok = isinstance(value, kind) and not isinstance(value, bool)
            if not ok:
                raise ValueError(
                    f"result row field {field!r} must be {kind.__name__}, "
                    f"got {value!r}"
                )
        if row["events"] <= 0 or row["wall_s"] <= 0:
            raise ValueError("result rows must have positive events and wall_s")
    totals = doc.get("totals")
    if not isinstance(totals, dict):
        raise ValueError("totals must be an object")
    for field in ("events", "wall_s", "events_per_sec", "ns_per_event"):
        if not isinstance(totals.get(field), (int, float)):
            raise ValueError(f"totals field {field!r} missing or non-numeric")
    if totals["events"] != sum(r["events"] for r in results):
        raise ValueError("totals.events disagrees with the result rows")


def render_table(doc: Dict[str, Any]) -> str:
    """Human-readable summary of one BENCH document."""
    lines = [
        f"engine throughput ({doc['mode']}, {doc['python']})",
        f"{'protocol':<12}{'events':>10}{'wall (s)':>10}{'events/s':>12}{'ns/event':>10}",
    ]
    for row in doc["results"]:
        lines.append(
            f"{row['protocol']:<12}{row['events']:>10}{row['wall_s']:>10.3f}"
            f"{row['events_per_sec']:>12,.0f}{row['ns_per_event']:>10.0f}"
        )
    t = doc["totals"]
    lines.append(
        f"{'TOTAL':<12}{t['events']:>10}{t['wall_s']:>10.3f}"
        f"{t['events_per_sec']:>12,.0f}{t['ns_per_event']:>10.0f}"
    )
    return "\n".join(lines)


def default_out_path(smoke: bool) -> pathlib.Path:
    date = datetime.date.today().isoformat()
    name = f"BENCH_smoke_{date}.json" if smoke else f"BENCH_{date}.json"
    return pathlib.Path(name)


def _pin_hash_seed() -> None:
    """Re-exec under a fixed ``PYTHONHASHSEED`` when randomization is on.

    String-hash randomization moves dict/set layouts between interpreter
    launches, which swings measured throughput by 20%+ on unlucky seeds —
    far more than the regressions the ledger exists to catch.  Pinning the
    seed makes wall times comparable across runs; event counts were always
    deterministic.
    """
    import os

    if os.environ.get("PYTHONHASHSEED", "random") != "random":
        return  # already pinned (possibly by our own re-exec)
    env = dict(os.environ, PYTHONHASHSEED="0")
    os.execve(sys.executable, [sys.executable] + sys.argv, env)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny deterministic run (seconds) that still validates the schema",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="output JSON path (default: BENCH_<date>.json in the cwd)",
    )
    args = parser.parse_args(argv)
    doc = build_document(smoke=args.smoke)
    validate_bench_document(doc)
    out = pathlib.Path(args.out) if args.out else default_out_path(args.smoke)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(render_table(doc))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    _pin_hash_seed()  # script runs only: in-process callers keep their seed
    sys.exit(main())
