"""Legacy setuptools shim.

Project metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works offline (no PEP 517 build isolation, no wheel
package required).
"""

from setuptools import setup

setup()
