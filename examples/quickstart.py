#!/usr/bin/env python
"""Quickstart: define transactions, simulate under PCP-DA, inspect the run.

This is the smallest end-to-end tour of the public API:

1. declare periodic/one-shot transactions with read/write/compute steps,
2. assign priorities (paper convention: first = highest),
3. simulate under a concurrency-control protocol,
4. render the schedule, check serializability, read the metrics.

Run:  python examples/quickstart.py
"""

from repro import (
    PCPDA,
    RWPCP,
    SimConfig,
    Simulator,
    TransactionSpec,
    assign_by_order,
    compute,
    compute_metrics,
    read,
    render_gantt,
    write,
)


def main() -> None:
    # The paper's Example 3: a high-priority reader against a low-priority
    # writer of the same two items.
    t_high = TransactionSpec(
        "T1",
        (read("x"), read("y")),
        period=5.0,    # deadline = end of period (rate monotonic)
        offset=1.0,    # first arrival
    )
    t_low = TransactionSpec(
        "T2",
        (write("x"), compute(2.0), write("y", 2.0)),
        offset=0.0,    # one-shot transaction
    )
    taskset = assign_by_order([t_high, t_low])  # T1 gets the higher priority

    print("Task set:")
    print(taskset.describe())

    for protocol in (PCPDA(), RWPCP()):
        result = Simulator(
            taskset, protocol, SimConfig(horizon=11.0, max_instances=2)
        ).run()

        print(f"\n=== schedule under {protocol.describe()} ===")
        print(render_gantt(result))

        result.check_serializable()  # raises if the history were not CSR

        metrics = compute_metrics(result)
        for jm in sorted(metrics.jobs, key=lambda m: m.job):
            status = "MISSED" if jm.missed_deadline else "ok"
            print(
                f"  {jm.job}: response={jm.response_time:g}  "
                f"blocked={jm.blocking_time:g}  deadline {status}"
            )
        print(f"  total blocking: {metrics.total_blocking_time:g}, "
              f"misses: {metrics.missed_jobs}/{metrics.total_jobs}")


if __name__ == "__main__":
    main()
