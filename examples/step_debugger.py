#!/usr/bin/env python
"""Step through the paper's Example 4 and watch the protocol think.

Uses the simulator's stepping API (`start` / `advance` / `finalize`) to
pause at each integer instant of Example 4 under PCP-DA and print:

* who runs, who is ready, who is blocked (and on whom),
* the lock table (item -> holders and modes),
* the live system ceiling and T* — the quantities LC2/LC3/LC4 consult.

Follow along with Section 6's narration: the LC4 grant at t=1, T4's
write lock at t=3 raising no ceiling, T1 reading the write-locked x at
t=4, and the ceiling collapsing to dummy at t=9.

Run:  python examples/step_debugger.py [--protocol rw-pcp]
"""

import argparse

from repro import DUMMY_PRIORITY, Simulator, make_protocol
from repro.engine.job import JobState
from repro.workloads.examples import example4_taskset


def snapshot(sim: Simulator, now: float) -> str:
    lines = [f"--- t = {now:g} ---"]

    for job in sorted(sim.jobs, key=lambda j: j.name):
        if not job.state.active:
            status = f"committed at {job.finish_time:g}"
        elif job.state is JobState.BLOCKED:
            blockers = ", ".join(
                b.name for b in sim.waits.blockers_of(job)
            )
            item, mode = job.pending_request
            status = f"BLOCKED on {mode.value}-lock({item}) by {blockers}"
        else:
            status = job.state.value
            if job.running_priority != job.base_priority:
                status += f" (inherited priority {job.running_priority})"
        lines.append(f"  {job.name:<6} {status}")

    held = {}
    for job in sim.jobs:
        for item, modes in sim.table.items_held_by(job).items():
            held.setdefault(item, []).append(
                f"{job.name}:{'+'.join(sorted(m.value for m in modes))}"
            )
    locks = "; ".join(
        f"{item} -> {', '.join(holders)}" for item, holders in sorted(held.items())
    )
    lines.append(f"  locks: {locks or '(none)'}")

    ceiling = sim.protocol.system_ceiling(None)
    lines.append(
        "  Sysceil: "
        + ("dummy" if ceiling == DUMMY_PRIORITY else f"P={ceiling}")
    )
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--protocol", default="pcp-da")
    args = parser.parse_args()

    sim = Simulator(example4_taskset(), make_protocol(args.protocol))
    sim.start()
    for t in range(0, 12):
        sim.advance(until=float(t))
        print(snapshot(sim, float(t)))
    sim.advance()
    result = sim.finalize()
    print("\nfinal commits:", {
        j.name: j.finish_time for j in sorted(result.jobs, key=lambda j: j.name)
    })
    result.check_serializable()
    print("history is serializable.")


if __name__ == "__main__":
    main()
