#!/usr/bin/env python
"""Domain scenario: a hard real-time avionics data store.

The paper motivates hard RTDBS with "avionics systems, aerospace systems,
robotics and defence systems".  This example models a small flight-control
data store shared by five periodic transactions:

* ``AttitudeCtl`` (10 ms)  — reads the fused attitude estimate and writes
  actuator commands; missing its deadline destabilises the aircraft;
* ``SensorFusion`` (20 ms) — reads raw gyro/accel samples, writes the
  fused attitude estimate;
* ``NavUpdate`` (40 ms)    — reads GPS + attitude, writes the nav solution;
* ``Telemetry`` (80 ms)    — reads nearly everything for the downlink;
* ``GroundCmd`` (160 ms)   — writes setpoints uploaded from the ground.

Rate-monotonic priorities follow the periods.  The script

1. computes the Section 9 worst-case blocking terms per protocol,
2. checks the rate-monotonic schedulability condition, and
3. validates the analysis by simulating two full hyperperiods under
   PCP-DA, RW-PCP and 2PL-HP.

Run:  python examples/avionics_monitor.py
"""

from repro import (
    SimConfig,
    Simulator,
    TransactionSpec,
    assign_rate_monotonic,
    compute,
    compute_metrics,
    make_protocol,
    read,
    write,
)
from repro.analysis import blocking_terms, rm_schedulable_detail
from repro.model.spec import TaskSet


def build_taskset() -> TaskSet:
    """The avionics transactions (durations in milliseconds)."""
    specs = [
        TransactionSpec(
            "AttitudeCtl",
            (read("attitude", 0.4), compute(0.8), write("actuators", 0.3)),
            period=10.0,
        ),
        TransactionSpec(
            "SensorFusion",
            (read("gyro", 0.5), read("accel", 0.5), compute(1.5),
             write("attitude", 0.5)),
            period=20.0,
        ),
        TransactionSpec(
            "NavUpdate",
            (read("gps", 0.6), read("attitude", 0.4), compute(2.0),
             write("navsol", 0.5)),
            period=40.0,
        ),
        TransactionSpec(
            "Telemetry",
            (read("attitude", 0.5), read("navsol", 0.5),
             read("actuators", 0.5), compute(2.5)),
            period=80.0,
        ),
        TransactionSpec(
            "GroundCmd",
            (compute(1.0), write("setpoints", 0.5), write("gps", 0.5)),
            period=160.0,
        ),
    ]
    return assign_rate_monotonic(TaskSet(specs))


def main() -> None:
    taskset = build_taskset()
    print("Avionics task set (rate-monotonic priorities):")
    print(taskset.describe())
    print(f"total utilisation: {taskset.total_utilization():.3f}\n")

    # --- Section 9 analysis ------------------------------------------
    print("Worst-case blocking terms B_i (ms):")
    print(f"{'transaction':<14}{'pcp-da':>8}{'rw-pcp':>8}{'pcp':>8}")
    per_protocol = {p: blocking_terms(taskset, p) for p in ("pcp-da", "rw-pcp", "pcp")}
    for spec in taskset:
        row = "".join(
            f"{per_protocol[p][spec.name]:>8.2f}" for p in ("pcp-da", "rw-pcp", "pcp")
        )
        print(f"{spec.name:<14}{row}")

    print("\nRate-monotonic schedulability condition (Section 9):")
    for protocol in ("pcp-da", "rw-pcp", "pcp"):
        detail = rm_schedulable_detail(taskset, protocol)
        verdict = "SCHEDULABLE" if detail.schedulable else "NOT schedulable"
        print(f"  {protocol:<8} -> {verdict}")

    # --- simulation validation ----------------------------------------
    print("\nSimulating two hyperperiods:")
    hyper = taskset.hyperperiod()
    assert hyper is not None
    for protocol in ("pcp-da", "rw-pcp", "2pl-hp"):
        result = Simulator(
            taskset,
            make_protocol(protocol),
            SimConfig(horizon=2 * hyper, deadlock_action="abort_lowest"),
        ).run()
        metrics = compute_metrics(result)
        worst = max(
            (jm.response_time or 0.0 for jm in metrics.jobs
             if jm.transaction == "AttitudeCtl"),
            default=0.0,
        )
        print(
            f"  {protocol:<8} misses={metrics.missed_jobs}/{metrics.total_jobs}"
            f"  blocking={metrics.total_blocking_time:7.2f} ms"
            f"  restarts={metrics.total_restarts}"
            f"  worst AttitudeCtl response={worst:.2f} ms"
        )
        result.check_serializable()

    print("\nInterpretation: the control loop's worst-case response under "
          "PCP-DA excludes\nthe write-only transactions from its blocking "
          "set, which is exactly the paper's\nSection 9 improvement.")


if __name__ == "__main__":
    main()
