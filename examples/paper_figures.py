#!/usr/bin/env python
"""Regenerate every figure of the paper in the terminal.

Runs Examples 1, 3, 4 under both PCP-DA and RW-PCP (Figures 1-5) and the
Example 5 deadlock demonstration, printing ASCII Gantt charts, the
``Max_Sysceil`` traces, and per-transaction blocking — the complete visual
content of the paper's Sections 3, 6 and 7.

Run:  python examples/paper_figures.py
"""

from repro import (
    SimConfig,
    Simulator,
    SysceilTrace,
    compute_metrics,
    example1_taskset,
    example3_taskset,
    example4_taskset,
    example5_taskset,
    make_protocol,
    render_gantt,
)

FIGURES = [
    ("Figure 1", "Example 1", example1_taskset, "rw-pcp", None),
    ("(no figure)", "Example 1", example1_taskset, "pcp-da", None),
    ("Figure 2", "Example 3", example3_taskset, "pcp-da",
     SimConfig(horizon=11.0, max_instances=2)),
    ("Figure 3", "Example 3", example3_taskset, "rw-pcp",
     SimConfig(horizon=11.0, max_instances=2)),
    ("Figure 4", "Example 4", example4_taskset, "pcp-da", None),
    ("Figure 5", "Example 4", example4_taskset, "rw-pcp", None),
]


def show(figure: str, example: str, build, protocol_name: str, config) -> None:
    result = Simulator(build(), make_protocol(protocol_name), config).run()
    title = f"{figure}: {example} under {protocol_name}"
    print("=" * len(title))
    print(title)
    print("=" * len(title))
    print(render_gantt(result))
    print(SysceilTrace.from_result(result).render(label="Max_Sysceil"))
    metrics = compute_metrics(result)
    blocked = {
        jm.job: jm.blocking_time for jm in metrics.jobs if jm.blocking_time
    }
    print(f"blocking: {blocked or 'none'};  "
          f"deadline misses: {metrics.missed_jobs}")
    result.check_serializable()
    print()


def show_example5() -> None:
    title = "Example 5: the deadlock that motivates LC3/LC4"
    print("=" * len(title))
    print(title)
    print("=" * len(title))
    weak = Simulator(
        example5_taskset(),
        make_protocol("weak-pcp-da"),
        SimConfig(deadlock_action="halt"),
    ).run()
    assert weak.deadlock is not None
    print(
        f"weak-pcp-da (conditions (1)/(2) only): DEADLOCK at "
        f"t={weak.deadlock.time:g}: {' -> '.join(weak.deadlock.cycle)}"
    )
    real = Simulator(example5_taskset(), make_protocol("pcp-da")).run()
    print("pcp-da (LC3/LC4): no deadlock —")
    print(render_gantt(real))


def main() -> None:
    for figure in FIGURES:
        show(*figure)
    show_example5()


if __name__ == "__main__":
    main()
