#!/usr/bin/env python
"""Protocol shootout: all seven protocols on the same random workloads.

Sweeps data contention (hot-set access probability) and CPU load (target
utilisation), simulating each generated task set under every registered
protocol, and prints the comparison the paper argues qualitatively:

* PCP-DA <= RW-PCP <= original PCP in blocking,
* 2PL-HP trades blocking for restarts,
* plain 2PL suffers unbounded priority inversion,
* the ceiling protocols never restart and never deadlock.

Run:  python examples/protocol_shootout.py [--seeds N]
"""

import argparse
import statistics

from repro import SimConfig, Simulator, compute_metrics, make_protocol
from repro.workloads.generator import WorkloadConfig, generate_taskset

PROTOCOLS = ("pcp-da", "rw-pcp", "ccp", "pcp", "ipcp", "pip-2pl", "2pl-hp", "2pl")


def sweep(n_seeds: int) -> None:
    for utilization in (0.4, 0.7):
        for hot in (0.4, 0.9):
            print(
                f"\n=== utilisation {utilization}, "
                f"hot-set probability {hot} ({n_seeds} workloads) ==="
            )
            print(
                f"{'protocol':<10}{'mean blocking':>14}{'worst blocking':>15}"
                f"{'miss%':>8}{'restarts':>10}"
            )
            for protocol in PROTOCOLS:
                blocking, worst, misses, restarts = [], [], [], 0
                for seed in range(n_seeds):
                    taskset = generate_taskset(
                        WorkloadConfig(
                            n_transactions=6, n_items=8,
                            write_probability=0.4,
                            hot_access_probability=hot,
                            target_utilization=utilization,
                            seed=seed,
                        )
                    )
                    result = Simulator(
                        taskset, make_protocol(protocol),
                        SimConfig(deadlock_action="abort_lowest"),
                    ).run()
                    metrics = compute_metrics(result)
                    blocking.append(metrics.total_blocking_time)
                    worst.append(metrics.max_blocking_time)
                    misses.append(metrics.miss_ratio)
                    restarts += metrics.total_restarts
                print(
                    f"{protocol:<10}{statistics.mean(blocking):>14.2f}"
                    f"{max(worst):>15.2f}"
                    f"{100 * statistics.mean(misses):>7.1f}%"
                    f"{restarts:>10}"
                )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=20,
                        help="random workloads per configuration")
    args = parser.parse_args()
    sweep(args.seeds)


if __name__ == "__main__":
    main()
