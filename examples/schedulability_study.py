#!/usr/bin/env python
"""Schedulability study: how much utilisation does PCP-DA buy?

Reproduces the Section 9 comparison at scale: for random transaction sets
of growing size and write-share, compute the breakdown utilisation (the
highest load at which the rate-monotonic condition still accepts the set)
under PCP-DA, RW-PCP and the original PCP, plus the exact response-time
analysis as a tighter reference.

Run:  python examples/schedulability_study.py [--sets N]
"""

import argparse
import statistics

from repro.analysis import (
    blocking_terms,
    breakdown_utilization,
    response_times,
)
from repro.workloads.generator import WorkloadConfig, generate_taskset

PROTOCOLS = ("pcp-da", "rw-pcp", "pcp")


def study(n_sets: int) -> None:
    print("Mean breakdown utilisation (RM bound), by workload shape:")
    print(
        f"{'n_txn':>6}{'write%':>8}"
        + "".join(f"{p:>10}" for p in PROTOCOLS)
        + f"{'da vs rw':>10}"
    )
    for n_txn in (4, 6, 8):
        for write_probability in (0.2, 0.5, 0.8):
            per_protocol = {p: [] for p in PROTOCOLS}
            for seed in range(n_sets):
                taskset = generate_taskset(
                    WorkloadConfig(
                        n_transactions=n_txn, n_items=6,
                        write_probability=write_probability,
                        hot_access_probability=0.8,
                        target_utilization=0.4, seed=seed,
                    )
                )
                for protocol in PROTOCOLS:
                    per_protocol[protocol].append(
                        breakdown_utilization(taskset, protocol)
                    )
            means = {p: statistics.mean(v) for p, v in per_protocol.items()}
            gain = means["pcp-da"] - means["rw-pcp"]
            print(
                f"{n_txn:>6}{write_probability:>8.1f}"
                + "".join(f"{means[p]:>10.4f}" for p in PROTOCOLS)
                + f"{gain:>+10.4f}"
            )

    # One fully worked set: blocking terms and response times side by side.
    taskset = generate_taskset(
        WorkloadConfig(
            n_transactions=5, n_items=4, write_probability=0.5,
            hot_access_probability=0.9, target_utilization=0.55, seed=3,
        )
    )
    print("\nWorked example (seed 3):")
    print(taskset.describe())
    print(f"\n{'txn':<5}{'B_i da':>9}{'B_i rw':>9}{'R_i da':>9}{'R_i rw':>9}{'period':>9}")
    b_da = blocking_terms(taskset, "pcp-da")
    b_rw = blocking_terms(taskset, "rw-pcp")
    r_da = response_times(taskset, "pcp-da")
    r_rw = response_times(taskset, "rw-pcp")
    for spec in taskset:
        print(
            f"{spec.name:<5}{b_da[spec.name]:>9.2f}{b_rw[spec.name]:>9.2f}"
            f"{r_da[spec.name]:>9.2f}{r_rw[spec.name]:>9.2f}"
            f"{spec.period:>9.0f}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sets", type=int, default=25,
                        help="random task sets per configuration")
    args = parser.parse_args()
    study(args.sets)


if __name__ == "__main__":
    main()
