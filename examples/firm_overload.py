#!/usr/bin/env python
"""Open-system overload study: firm deadlines under a Poisson stream.

Models the classic RTDBS operating point the paper's introduction worries
about: transactions arrive continuously, each must commit before a
slack-based firm deadline or be dropped.  The script sweeps the arrival
rate from light load into saturation and reports, per protocol:

* miss (drop) ratio,
* restarts (wasted re-execution, for the abort-based protocols),
* mean response time of the transactions that made it.

Watch two of the paper's arguments appear in the numbers: PCP-DA's curve
stays below RW-PCP-A / 2PL-HP / OCC at every load (no work is ever thrown
away), and the abort-based protocols' restart counts explode exactly when
capacity gets scarce.

Run:  python examples/firm_overload.py [--seeds N]
"""

import argparse
import statistics

from repro import SimConfig, Simulator, compute_metrics, make_protocol
from repro.workloads.open_system import (
    OpenSystemConfig,
    generate_open_system,
    offered_load,
)

PROTOCOLS = ("pcp-da", "pip-2pl", "2pl-hp", "occ-bc", "rw-pcp-abort")
RATES = (0.1, 0.25, 0.4, 0.55, 0.7)


def sweep(n_seeds: int) -> None:
    print(
        f"{'rate':<6}{'load':>6}  "
        + "".join(f"{p:>16}" for p in PROTOCOLS)
    )
    for rate in RATES:
        loads = []
        cells = []
        for protocol in PROTOCOLS:
            misses, responses, restarts = [], [], 0
            for seed in range(n_seeds):
                config = OpenSystemConfig(
                    arrival_rate=rate, duration=200.0, seed=seed,
                    hot_access_probability=0.6,
                )
                taskset = generate_open_system(config)
                loads.append(offered_load(taskset, config.duration))
                result = Simulator(
                    taskset, make_protocol(protocol),
                    SimConfig(
                        horizon=500.0, on_miss="abort",
                        deadlock_action="abort_lowest",
                    ),
                ).run()
                metrics = compute_metrics(result)
                misses.append(metrics.miss_ratio)
                restarts += metrics.total_restarts
                if metrics.mean_response_time is not None:
                    responses.append(metrics.mean_response_time)
            cells.append(
                f"{100 * statistics.mean(misses):>7.1f}%"
                f"/{restarts:<3}"
                f"r{statistics.mean(responses):>4.1f}"
            )
        print(f"{rate:<6}{statistics.mean(loads):>6.2f}  " + "".join(
            f"{cell:>16}" for cell in cells
        ))
    print("\n(cells: miss% / restarts, r = mean response time of committed jobs)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=8)
    args = parser.parse_args()
    sweep(args.seeds)


if __name__ == "__main__":
    main()
