"""Unit tests for SG(H) and cycle detection (repro.db.serialization_graph)."""

from repro.db.serialization_graph import SerializationGraph


class TestSerializationGraph:
    def test_empty_graph_is_acyclic(self):
        g = SerializationGraph()
        assert g.is_acyclic()
        assert g.topological_order() == ()
        assert g.find_cycle() is None

    def test_self_loop_ignored(self):
        g = SerializationGraph()
        g.add_edge("A", "A")
        assert g.edges == ()
        assert g.is_acyclic()

    def test_chain_topological_order(self):
        g = SerializationGraph()
        g.add_edge("A", "B")
        g.add_edge("B", "C")
        assert g.topological_order() == ("A", "B", "C")

    def test_lexicographically_smallest_order(self):
        g = SerializationGraph(["C", "A", "B"])  # no edges
        assert g.topological_order() == ("A", "B", "C")

    def test_two_cycle_detected(self):
        g = SerializationGraph()
        g.add_edge("A", "B")
        g.add_edge("B", "A")
        assert not g.is_acyclic()
        cycle = g.find_cycle()
        assert cycle is not None
        assert set(cycle) == {"A", "B"}

    def test_long_cycle_detected(self):
        g = SerializationGraph()
        for src, dst in [("A", "B"), ("B", "C"), ("C", "D"), ("D", "B")]:
            g.add_edge(src, dst)
        cycle = g.find_cycle()
        assert cycle is not None
        assert set(cycle) == {"B", "C", "D"}

    def test_cycle_is_closed(self):
        g = SerializationGraph()
        g.add_edge("A", "B")
        g.add_edge("B", "C")
        g.add_edge("C", "A")
        cycle = list(g.find_cycle())
        for i, node in enumerate(cycle):
            assert g.has_edge(node, cycle[(i + 1) % len(cycle)])

    def test_diamond_is_acyclic(self):
        g = SerializationGraph()
        g.add_edge("A", "B")
        g.add_edge("A", "C")
        g.add_edge("B", "D")
        g.add_edge("C", "D")
        order = g.topological_order()
        assert order is not None
        assert order.index("A") < order.index("D")

    def test_edge_labels_accumulate(self):
        g = SerializationGraph()
        g.add_edge("A", "B", "wr")
        g.add_edge("A", "B", "rw")
        assert g.edge_labels("A", "B") == ("rw", "wr")
        assert g.edge_labels("B", "A") == ()

    def test_isolated_nodes_kept(self):
        g = SerializationGraph(["X"])
        g.add_edge("A", "B")
        assert "X" in g.nodes
        assert len(g) == 3

    def test_successors_sorted(self):
        g = SerializationGraph()
        g.add_edge("A", "C")
        g.add_edge("A", "B")
        assert g.successors("A") == ("B", "C")
