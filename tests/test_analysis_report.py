"""Unit tests for the schedulability report (repro.analysis.report)."""

import pytest

from repro.analysis.report import schedulability_report
from repro.workloads.examples import example4_taskset


class TestSchedulabilityReport:
    @pytest.fixture
    def report(self):
        # Example 4's transactions given periods for the analysis.
        ts = example4_taskset()
        from repro.model.spec import TaskSet, TransactionSpec

        periodic = TaskSet([
            TransactionSpec(
                name=s.name, operations=s.operations, priority=s.priority,
                period=20.0 * (5 - (s.priority or 0)),
            )
            for s in ts
        ])
        return schedulability_report(periodic)

    def test_covers_all_transactions_and_protocols(self, report):
        assert set(report.taskset_names) == {"T1", "T2", "T3", "T4"}
        assert set(report.blocking_by_protocol) == {"pcp-da", "rw-pcp", "pcp"}

    def test_bts_members_sorted(self, report):
        for per_txn in report.bts_by_protocol.values():
            for members in per_txn.values():
                assert list(members) == sorted(members)

    def test_blocking_ordering_across_protocols(self, report):
        for name in report.taskset_names:
            assert (
                report.blocking_by_protocol["pcp-da"][name]
                <= report.blocking_by_protocol["rw-pcp"][name]
                <= report.blocking_by_protocol["pcp"][name]
            )

    def test_breakdown_ordering(self, report):
        assert (
            report.breakdown_by_protocol["pcp-da"]
            >= report.breakdown_by_protocol["rw-pcp"] - 1e-6
        )

    def test_render_is_complete(self, report):
        text = report.render()
        for name in report.taskset_names:
            assert name in text
        assert "breakdown utilisation" in text
        assert "rm-bound schedulable" in text
        assert "critical-section refinement" in text

    def test_refined_terms_never_exceed_classic(self, report):
        for protocol, per_txn in report.refined_blocking_by_protocol.items():
            for name, refined in per_txn.items():
                assert refined <= report.blocking_by_protocol[protocol][name] + 1e-9
