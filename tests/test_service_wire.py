"""Wire-protocol and TCP-transport tests for the lock-manager service.

Covers the NDJSON codec, the exception → wire-error mapping, the shared
``dispatch_request`` entry point, and the real TCP transport (pipelining,
error re-raising, disconnect cleanup) over a loopback ``LockServer`` on
an ephemeral port.
"""

import asyncio

import pytest

from repro.exceptions import (
    AdmissionError,
    DeadlineExceeded,
    ProtocolVersionError,
    ServiceError,
    SessionStateError,
    SpecificationError,
    TransactionAborted,
)
from repro.model.priorities import assign_by_order
from repro.model.spec import TaskSet, TransactionSpec, read, write
from repro.service import LockManager, ServiceConfig
from repro.service import wire
from repro.service.client import connect_tcp, in_process_client
from repro.service.server import LockServer


def catalog_rw() -> TaskSet:
    specs = [
        TransactionSpec("T1", (read("x", 1.0),), offset=0.0),
        TransactionSpec("T2", (write("x", 1.0),), offset=0.0),
        TransactionSpec("T3", (read("x", 1.0), write("y", 1.0)), offset=0.0),
    ]
    return assign_by_order(specs)


def run(coro):
    return asyncio.run(coro)


class TestCodec:
    def test_encode_decode_round_trip(self):
        document = {"id": 7, "op": "read", "session": 3, "item": "x"}
        line = wire.encode(document)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert wire.decode(line) == document

    def test_decode_rejects_non_object(self):
        with pytest.raises(ValueError):
            wire.decode(b"[1, 2, 3]\n")

    def test_decode_rejects_bad_json(self):
        with pytest.raises(ValueError):
            wire.decode(b"{not json}\n")

    def test_error_types_cover_service_hierarchy(self):
        assert wire.ERROR_TYPES == {
            "service": ServiceError,
            "admission": AdmissionError,
            "session-state": SessionStateError,
            "aborted": TransactionAborted,
            "deadline": DeadlineExceeded,
            "version": ProtocolVersionError,
        }

    def test_exception_mapping(self):
        doc = wire.exception_to_error(1, TransactionAborted("boom"))
        assert doc["error"]["kind"] == "aborted"
        doc = wire.exception_to_error(2, SpecificationError("bad"))
        assert doc["error"]["kind"] == "bad-request"
        doc = wire.exception_to_error(3, KeyError("item"))
        assert doc["error"]["kind"] == "bad-request"
        doc = wire.exception_to_error(4, RuntimeError("oops"))
        assert doc["error"]["kind"] == "internal"
        assert "RuntimeError" in doc["error"]["message"]


class TestDispatch:
    def test_ping_reports_version_and_protocol(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            response = await wire.dispatch_request(
                manager, {"id": 1, "op": "ping"}
            )
            assert response["ok"]
            assert response["result"]["version"] == wire.PROTOCOL_VERSION
            assert response["result"]["protocol"] == "pcp-da"
            await manager.shutdown()

        run(body())

    def test_full_transaction_via_documents(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            begin = await wire.dispatch_request(
                manager, {"id": 1, "op": "begin", "transaction": "T2"}
            )
            assert begin["ok"]
            session_id = begin["result"]["session"]
            wrote = await wire.dispatch_request(
                manager,
                {"id": 2, "op": "write", "session": session_id,
                 "item": "x", "value": 99},
            )
            assert wrote["ok"] and wrote["result"]["buffered"]
            committed = await wire.dispatch_request(
                manager, {"id": 3, "op": "commit", "session": session_id}
            )
            assert committed["ok"]
            assert committed["result"]["installed"] == ["x"]
            await manager.shutdown()

        run(body())

    def test_unknown_op_is_bad_request(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            response = await wire.dispatch_request(
                manager, {"id": 9, "op": "frobnicate"}
            )
            assert not response["ok"]
            assert response["error"]["kind"] == "bad-request"
            await manager.shutdown()

        run(body())

    def test_missing_field_is_bad_request(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            response = await wire.dispatch_request(
                manager, {"id": 9, "op": "read", "item": "x"}
            )
            assert not response["ok"]
            assert response["error"]["kind"] == "bad-request"
            await manager.shutdown()

        run(body())

    def test_error_id_echoed_back(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            response = await wire.dispatch_request(
                manager, {"id": "tok-42", "op": "read", "session": 999,
                          "item": "x"}
            )
            assert response["id"] == "tok-42"
            assert response["error"]["kind"] == "session-state"
            await manager.shutdown()

        run(body())

    def test_in_process_client_raises_mapped_errors(self):
        async def body():
            manager = LockManager(
                catalog_rw(), "pcp-da", ServiceConfig(max_sessions=1)
            )
            client = in_process_client(manager)
            txn = await client.begin("T1")
            with pytest.raises(AdmissionError):
                await client.begin("T2")
            await txn.abort()
            await manager.shutdown()

        run(body())


@pytest.mark.service_soak
class TestTcpTransport:
    """Real loopback sockets — excluded from tier-1 / ``verify-service``
    (both stay socket-free); ``make verify-service SOAK=1`` runs these."""

    def test_round_trip_with_pipelining(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            server = LockServer(manager, port=0)
            await server.start()
            try:
                client = await connect_tcp("127.0.0.1", server.port)
                async with client:
                    pong = await client.ping()
                    assert pong["version"] == wire.PROTOCOL_VERSION
                    # Pipeline: many concurrent sessions on one connection.
                    async def one(name):
                        txn = await client.begin(name)
                        if name == "T2":
                            await txn.write("x", name)
                        else:
                            await txn.read("x")
                        return await txn.commit()

                    results = await asyncio.gather(
                        one("T1"), one("T2"), one("T3")
                    )
                    assert all("installed" in r for r in results)
                    stats = await client.stats()
                    assert stats["commits"] == 3
            finally:
                await server.close()

        run(body())

    def test_wire_error_reraised_as_exception(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            server = LockServer(manager, port=0)
            await server.start()
            try:
                async with await connect_tcp("127.0.0.1", server.port) as c:
                    with pytest.raises(SessionStateError):
                        await c.request("read", session=424242, item="x")
            finally:
                await server.close()

        run(body())

    def test_bad_json_line_gets_error_response(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            server = LockServer(manager, port=0)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"this is not json\n")
                await writer.drain()
                response = wire.decode(await reader.readline())
                assert not response["ok"]
                assert response["error"]["kind"] == "bad-request"
                writer.close()
                await writer.wait_closed()
            finally:
                await server.close()

        run(body())

    def test_disconnect_aborts_owned_sessions(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            server = LockServer(manager, port=0)
            await server.start()
            try:
                client = await connect_tcp("127.0.0.1", server.port)
                txn = await client.begin("T2")
                await txn.write("x", 1)
                await client.close()   # vanish without commit/abort
                # Give the server's connection handler time to clean up.
                for _ in range(50):
                    await asyncio.sleep(0.01)
                    if not manager.table.writers_of("x"):
                        break
                assert not manager.table.writers_of("x")
                assert manager.stats.client_aborts >= 1
                # The lock table is usable again afterwards.
                survivor = await connect_tcp("127.0.0.1", server.port)
                async with survivor:
                    txn2 = await survivor.begin("T2")
                    await txn2.write("x", 2)
                    assert (await txn2.commit())["installed"] == ["x"]
            finally:
                await server.close()

        run(body())

    def test_server_close_shuts_manager_down(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            server = LockServer(manager, port=0)
            await server.start()
            await server.close()
            with pytest.raises(ServiceError):
                await manager.begin("T1")

        run(body())
