"""Unit tests for trace export (repro.trace.export)."""

import csv
import io
import json

import pytest

from repro.trace.export import (
    metrics_to_csv,
    result_to_dict,
    result_to_json,
    segments_to_csv,
    sysceil_to_csv,
)
from tests.conftest import run


@pytest.fixture
def result(ex4):
    return run(ex4, "rw-pcp")


class TestResultToDict:
    def test_top_level_shape(self, result):
        doc = result_to_dict(result)
        assert doc["protocol"] == "rw-pcp"
        assert doc["deadlock"] is None
        assert doc["end_time"] == 11.0
        assert {t["name"] for t in doc["transactions"]} == {"T1", "T2", "T3", "T4"}

    def test_jobs_carry_metrics(self, result):
        doc = result_to_dict(result)
        t3 = next(j for j in doc["jobs"] if j["job"] == "T3#0")
        assert t3["blocking_time"] == 4.0
        assert t3["blockers"] == ["T4"]
        assert t3["missed_deadline"] is False

    def test_segments_cover_all_jobs(self, result):
        doc = result_to_dict(result)
        jobs_with_segments = {s["job"] for s in doc["segments"]}
        assert jobs_with_segments == {j["job"] for j in doc["jobs"]}
        for seg in doc["segments"]:
            assert seg["end"] > seg["start"]
            assert seg["kind"] in ("executing", "blocked", "preempted")

    def test_lock_events_preserved(self, result):
        doc = result_to_dict(result)
        denied = [e for e in doc["lock_events"] if e["outcome"] == "denied"]
        assert len(denied) == 2  # T3's and T1's blockings

    def test_json_round_trip(self, result):
        text = result_to_json(result)
        doc = json.loads(text)
        assert doc["committed"][-1] == "T2#0"

    def test_deadlock_serialised(self, ex5):
        from repro.engine.simulator import SimConfig

        weak = run(ex5, "weak-pcp-da", SimConfig(deadlock_action="halt"))
        doc = result_to_dict(weak)
        assert doc["deadlock"] == {"time": 3.0, "cycle": ["TL#0", "TH#0"]}


class TestCSVExports:
    def _parse(self, text):
        return list(csv.DictReader(io.StringIO(text)))

    def test_segments_csv(self, result):
        rows = self._parse(segments_to_csv(result))
        assert {"transaction", "job", "kind", "start", "end"} <= set(rows[0])
        blocked = [r for r in rows if r["kind"] == "blocked" and r["job"] == "T3#0"]
        assert len(blocked) == 1
        assert float(blocked[0]["start"]) == 1.0
        assert float(blocked[0]["end"]) == 5.0

    def test_sysceil_csv(self, result):
        rows = self._parse(sysceil_to_csv(result))
        levels = [int(r["level"]) for r in rows]
        assert max(levels) == 4  # P1, the Figure 5 peak

    def test_metrics_csv(self, result):
        rows = self._parse(metrics_to_csv(result))
        assert len(rows) == len(result.jobs)
        t1 = next(r for r in rows if r["job"] == "T1#0")
        assert float(t1["blocking_time"]) == 1.0
        assert t1["missed_deadline"] == "0"
