"""Unit tests for trace export (repro.trace.export)."""

import csv
import io
import json

import pytest

from repro.trace.export import (
    metrics_to_csv,
    recorder_from_dict,
    recorder_to_dict,
    result_to_dict,
    result_to_json,
    segments_to_csv,
    sysceil_to_csv,
)
from tests.conftest import run


@pytest.fixture
def result(ex4):
    return run(ex4, "rw-pcp")


class TestResultToDict:
    def test_top_level_shape(self, result):
        doc = result_to_dict(result)
        assert doc["protocol"] == "rw-pcp"
        assert doc["deadlock"] is None
        assert doc["end_time"] == 11.0
        assert {t["name"] for t in doc["transactions"]} == {"T1", "T2", "T3", "T4"}

    def test_jobs_carry_metrics(self, result):
        doc = result_to_dict(result)
        t3 = next(j for j in doc["jobs"] if j["job"] == "T3#0")
        assert t3["blocking_time"] == 4.0
        assert t3["blockers"] == ["T4"]
        assert t3["missed_deadline"] is False

    def test_segments_cover_all_jobs(self, result):
        doc = result_to_dict(result)
        jobs_with_segments = {s["job"] for s in doc["segments"]}
        assert jobs_with_segments == {j["job"] for j in doc["jobs"]}
        for seg in doc["segments"]:
            assert seg["end"] > seg["start"]
            assert seg["kind"] in ("executing", "blocked", "preempted")

    def test_lock_events_preserved(self, result):
        doc = result_to_dict(result)
        denied = [e for e in doc["lock_events"] if e["outcome"] == "denied"]
        assert len(denied) == 2  # T3's and T1's blockings

    def test_json_round_trip(self, result):
        text = result_to_json(result)
        doc = json.loads(text)
        assert doc["committed"][-1] == "T2#0"

    def test_deadlock_serialised(self, ex5):
        from repro.engine.simulator import SimConfig

        weak = run(ex5, "weak-pcp-da", SimConfig(deadlock_action="halt"))
        doc = result_to_dict(weak)
        assert doc["deadlock"] == {"time": 3.0, "cycle": ["TL#0", "TH#0"]}


class TestCSVExports:
    def _parse(self, text):
        return list(csv.DictReader(io.StringIO(text)))

    def test_segments_csv(self, result):
        rows = self._parse(segments_to_csv(result))
        assert {"transaction", "job", "kind", "start", "end"} <= set(rows[0])
        blocked = [r for r in rows if r["kind"] == "blocked" and r["job"] == "T3#0"]
        assert len(blocked) == 1
        assert float(blocked[0]["start"]) == 1.0
        assert float(blocked[0]["end"]) == 5.0

    def test_sysceil_csv(self, result):
        rows = self._parse(sysceil_to_csv(result))
        levels = [int(r["level"]) for r in rows]
        assert max(levels) == 4  # P1, the Figure 5 peak

    def test_metrics_csv(self, result):
        rows = self._parse(metrics_to_csv(result))
        assert len(rows) == len(result.jobs)
        t1 = next(r for r in rows if r["job"] == "T1#0")
        assert float(t1["blocking_time"]) == 1.0
        assert t1["missed_deadline"] == "0"


class TestRecorderRoundTrip:
    """``recorder_to_dict`` / ``recorder_from_dict`` are exact inverses.

    The round trip runs over the full golden corpus (the same 51 cases
    the seed-engine digests pin), so every protocol, deadlock shape, and
    config knob the repo exercises is covered.  ``result_to_dict`` is
    untouched by these helpers — its shape is pinned by the digests.
    """

    @staticmethod
    def _streams(recorder):
        return (
            [(e.time, e.kind, e.job, e.other)
             for e in recorder.sched_events],
            [(e.time, e.job, e.item, e.mode, e.outcome, e.rule, e.blockers)
             for e in recorder.lock_events],
            [(s.job, s.start, s.end) for s in recorder.segments],
            list(recorder.sysceil_samples),
            list(recorder.priority_changes),
        )

    def test_round_trip_single_case(self, result):
        doc = recorder_to_dict(result.trace)
        rebuilt = recorder_from_dict(doc)
        assert self._streams(rebuilt) == self._streams(result.trace)

    def test_document_is_json_serialisable(self, result):
        text = json.dumps(recorder_to_dict(result.trace), sort_keys=True)
        rebuilt = recorder_from_dict(json.loads(text))
        assert self._streams(rebuilt) == self._streams(result.trace)

    def test_round_trip_whole_golden_corpus(self):
        from repro.engine.simulator import Simulator
        from repro.protocols.base import make_protocol
        from tests.golden_traces import CORPUS

        assert len(CORPUS) >= 51
        for name, build, proto, config in CORPUS:
            sim_result = Simulator(build(), make_protocol(proto), config).run()
            doc = recorder_to_dict(sim_result.trace)
            rebuilt = recorder_from_dict(json.loads(json.dumps(doc)))
            assert self._streams(rebuilt) == self._streams(
                sim_result.trace
            ), f"recorder round trip diverged for corpus case {name}"

    def test_result_to_dict_shape_untouched(self, result):
        # The analytical export's key set is part of the golden-digest
        # contract: the recorder helpers must not have changed it.
        assert sorted(result_to_dict(result)) == [
            "committed", "deadlock", "end_time", "jobs", "lock_events",
            "priority_changes", "protocol", "restarts", "sched_events",
            "segments", "sysceil", "transactions",
        ]
