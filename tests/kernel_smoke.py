"""Kernel-vs-reference smoke equivalence (the ``make kernel-smoke`` gate).

Runs a representative slice of the golden-trace corpus twice — once on
the array kernel (``SimConfig(kernel=True)``), once on the object
reference path — and demands byte-identical ``result_to_json`` output.
Socket-free and finishes in seconds; ``make verify`` runs it so a kernel
divergence is caught before the full batteries even start.

The slice covers every compiled table family (PCP-DA, weak PCP-DA, the
Sysceil family via RW-PCP/CCP/PCP, and IPCP) plus one fallback protocol
(2PL-HP) where both runs take the object path by construction.

Usage::

    PYTHONPATH=src python -m tests.kernel_smoke
"""

from __future__ import annotations

import sys

from tests.golden_traces import CORPUS, run_case

#: Corpus case names exercised by the smoke gate (one per table family,
#: plus deadlock halting, contention, and a fallback protocol).
SMOKE_CASES = (
    "example1/pcp-da",
    "example1/rw-pcp",
    "example1/ccp",
    "example1/pcp",
    "example1/ipcp",
    "example4/pcp-da",
    "example5/weak-pcp-da-halt",
    "workload-hot/pcp-da",
    "workload-hot/2pl-hp",
)


def main() -> int:
    """Run the smoke slice in both modes; non-zero exit on divergence."""
    cases = {name: (build, proto, config)
             for name, build, proto, config in CORPUS}
    failures = 0
    for name in SMOKE_CASES:
        build, proto, config = cases[name]
        fast = run_case(name, build, proto, config, kernel=True)
        reference = run_case(name, build, proto, config, kernel=False)
        ok = fast == reference
        failures += not ok
        print(f"{'ok  ' if ok else 'FAIL'} {name}")
    if failures:
        print(f"kernel smoke: {failures}/{len(SMOKE_CASES)} cases diverged")
        return 1
    print(f"kernel smoke: {len(SMOKE_CASES)} cases byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
