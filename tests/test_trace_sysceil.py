"""Unit tests for the Sysceil step function (repro.trace.sysceil)."""

import pytest

from repro.model.spec import DUMMY_PRIORITY
from repro.trace.sysceil import SysceilTrace
from tests.conftest import run


class TestSysceilTrace:
    @pytest.fixture
    def da_trace(self, ex4):
        return SysceilTrace.from_result(run(ex4, "pcp-da"))

    @pytest.fixture
    def rw_trace(self, ex4):
        return SysceilTrace.from_result(run(ex4, "rw-pcp"))

    def test_figure4_levels(self, da_trace):
        p2 = 3
        assert da_trace.level_at(0.0) == p2
        assert da_trace.level_at(8.9) == p2
        assert da_trace.level_at(9.5) == DUMMY_PRIORITY
        assert da_trace.max_level == p2

    def test_figure5_levels(self, rw_trace):
        p1, p2, p3 = 4, 3, 2
        # T4 read-locks y at 0: Wceil(y) = P2.
        assert rw_trace.level_at(0.5) == p2
        # T4 write-locks x at 1 (it runs 0..5 uninterrupted; T3 is blocked,
        # not running): Aceil(x) = P1 dominates until T4 commits at 5.
        assert rw_trace.level_at(1.0) == p1
        assert rw_trace.level_at(3.0) == p1
        assert rw_trace.max_level == p1
        # At t=5 T4 commits; T1 (scheduled first) read-locks x
        # (Wceil(x) = P4 = 1).  The awakened T3 only re-issues its request
        # when it gets the CPU at t=7 (lock requests execute in the
        # running transaction's context), raising the level to P3.
        assert rw_trace.level_at(6.0) == 1
        assert rw_trace.level_at(7.5) == p3
        # T2 write-locks y at 9: Aceil(y) = P2 until its commit at 11.
        assert rw_trace.level_at(9.5) == p2
        assert rw_trace.level_at(11.0) == DUMMY_PRIORITY

    def test_intervals_partition_the_run(self, da_trace):
        intervals = da_trace.intervals()
        assert intervals[0][0] == 0.0
        for (s1, e1, _), (s2, e2, _) in zip(intervals, intervals[1:]):
            assert e1 == pytest.approx(s2)
        assert intervals[-1][1] == pytest.approx(da_trace.end_time)

    def test_render_shows_levels_and_dummy(self, da_trace):
        text = da_trace.render()
        assert text.startswith("Sysceil: ")
        assert "3" in text and "-" in text

    def test_empty_trace(self):
        trace = SysceilTrace(samples=(), end_time=5.0)
        assert trace.max_level == DUMMY_PRIORITY
        assert trace.level_at(2.0) == DUMMY_PRIORITY
        assert trace.intervals() == ((0.0, 5.0, DUMMY_PRIORITY),)
