"""Property tests for the array kernel's interning layer.

The kernel's correctness rests on the id maps being true bijections while
a job is live: item ids must round-trip through names, job slots through
job objects, and bitset words through job lists.  Slot recycling (the
service churns through sessions) must preserve all of that for the jobs
still live.  Hypothesis drives random task-set shapes and random
intern/retire interleavings.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.ceilings import CeilingTable
from repro.engine.job import Job
from repro.engine.kernel.interning import Interner
from repro.model.priorities import assign_by_order
from repro.model.spec import TransactionSpec, read, write

_ITEMS = ("a", "b", "c", "d", "e")


@st.composite
def tasksets(draw):
    """Small task sets with varied read/write footprints."""
    n = draw(st.integers(min_value=1, max_value=4))
    specs = []
    for i in range(n):
        footprint = draw(
            st.lists(
                st.tuples(st.sampled_from(_ITEMS), st.booleans()),
                min_size=1, max_size=4, unique=True,
            )
        )
        ops = tuple(
            write(item, 1.0) if is_write else read(item, 1.0)
            for item, is_write in footprint
        )
        specs.append(TransactionSpec(f"T{i + 1}", ops))
    return assign_by_order(specs)


def _interner(taskset) -> Interner:
    return Interner(taskset, CeilingTable(taskset))


@given(tasksets())
def test_item_ids_round_trip(taskset):
    """ids → names → ids is the identity, and ids are dense ranks."""
    intern = _interner(taskset)
    assert len(intern.items) == len(taskset.items)
    for iid, name in enumerate(intern.items):
        assert intern.item_id(name) == iid
        assert intern.item_name(iid) == name
    for name in taskset.items:
        assert intern.item_name(intern.item_id(name)) == name


@given(tasksets())
def test_static_tables_match_ceilings_and_write_sets(taskset):
    """Flattened Wceil/Aceil lists and spec write masks agree with the
    object-level sources they were compiled from."""
    ceilings = CeilingTable(taskset)
    intern = Interner(taskset, ceilings)
    for iid, name in enumerate(intern.items):
        assert intern.wceil[iid] == ceilings.wceil(name)
        assert intern.aceil[iid] == ceilings.aceil(name)
    for spec in taskset:
        mask = intern.spec_write_mask[spec.name]
        named = {intern.item_name(i) for i in range(len(intern.items))
                 if mask >> i & 1}
        assert named == set(spec.write_set)


@given(tasksets(), st.data())
def test_job_slots_round_trip_through_interleaved_retirement(taskset, data):
    """Jobs → slots → jobs stays a bijection across intern/release
    interleavings, and recycled slots never alias a live job."""
    intern = _interner(taskset)
    specs = list(taskset)
    live = []
    for step in range(8):
        spec = data.draw(st.sampled_from(specs), label=f"spec{step}")
        job = Job(spec, step, 0.0)
        jid = intern.intern_job(job)
        assert intern.intern_job(job) == jid  # idempotent while live
        live.append(job)
        if data.draw(st.booleans(), label=f"retire{step}"):
            victim = data.draw(st.sampled_from(live), label=f"victim{step}")
            live.remove(victim)
            intern.release_job(victim)
        # The bijection holds for every live job at every step.
        assert len({intern.job_ids[j] for j in live}) == len(live)
        for j in live:
            assert intern.job_of(intern.job_ids[j]) is j
            assert (intern.job_write_mask[intern.job_ids[j]]
                    == intern.spec_write_mask[j.spec.name])


@given(tasksets())
def test_words_round_trip_through_jobs_from_word(taskset):
    """word → jobs → word is the identity for every subset of slots."""
    intern = _interner(taskset)
    jobs = [Job(spec, i, 0.0) for i, spec in enumerate(taskset)]
    for job in jobs:
        intern.intern_job(job)
    n = len(jobs)
    for word in range(1 << n):
        members = intern.jobs_from_word(word)
        back = 0
        for job in members:
            back |= 1 << intern.job_ids[job]
        assert back == word


@given(tasksets())
def test_read_mask_tracks_data_read_length(taskset):
    """The DataRead memo refreshes whenever the set's length changes
    (the only way the engine ever mutates it)."""
    intern = _interner(taskset)
    spec = next(iter(taskset))
    job = Job(spec, 0, 0.0)
    jid = intern.intern_job(job)
    assert intern.read_mask(jid) == 0
    for item in sorted(spec.read_set):
        job.data_read.add(item)
        mask = intern.read_mask(jid)
        named = {intern.item_name(i) for i in range(len(intern.items))
                 if mask >> i & 1}
        assert named == set(job.data_read)
    job.data_read.clear()  # restart() path
    assert intern.read_mask(jid) == 0
