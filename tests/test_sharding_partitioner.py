"""Tests for the item-space partitioners (repro.service.sharding.partitioner).

Routing is correctness-critical: a partitioner that maps the same item to
two different shards would split one item's version chain across two
databases.  These tests pin determinism, totality (every item maps to a
valid shard), and the documented structural properties of each scheme —
hash spread for ``HashPartitioner``, contiguity and balance for
``RangePartitioner``.
"""

import pytest

from repro.exceptions import SpecificationError
from repro.service.sharding import (
    HashPartitioner,
    RangePartitioner,
    make_partitioner,
)

ITEMS = tuple(f"item-{i:02d}" for i in range(17))


class TestHashPartitioner:
    def test_deterministic_and_in_range(self):
        p = HashPartitioner(4)
        first = [p.shard_of(item) for item in ITEMS]
        again = [p.shard_of(item) for item in ITEMS]
        assert first == again
        assert all(0 <= shard < 4 for shard in first)

    def test_stable_across_instances(self):
        # crc32 is a fixed function of the bytes: two partitioner objects
        # (two processes, two sessions) must agree on every routing.
        a, b = HashPartitioner(8), HashPartitioner(8)
        assert [a.shard_of(i) for i in ITEMS] == [b.shard_of(i) for i in ITEMS]

    def test_single_shard_maps_everything_to_zero(self):
        p = HashPartitioner(1)
        assert {p.shard_of(item) for item in ITEMS} == {0}

    def test_spreads_over_shards(self):
        # Not a uniformity proof, just a tripwire against a constant map.
        p = HashPartitioner(4)
        used = {p.shard_of(f"k{i}") for i in range(64)}
        assert len(used) == 4

    def test_assignment_covers_every_item_once(self):
        p = HashPartitioner(3)
        assignment = p.assignment(ITEMS)
        assert sorted(assignment) == [0, 1, 2]
        flat = [item for items in assignment.values() for item in items]
        assert sorted(flat) == sorted(ITEMS)
        for shard, items in assignment.items():
            assert all(p.shard_of(item) == shard for item in items)


class TestRangePartitioner:
    def test_contiguous_over_sorted_universe(self):
        p = RangePartitioner(4, ITEMS)
        shards = [p.shard_of(item) for item in sorted(ITEMS)]
        assert shards == sorted(shards)  # non-decreasing: ranges, not stripes

    def test_balanced_slices(self):
        p = RangePartitioner(4, ITEMS)
        sizes = [len(items) for items in p.assignment(ITEMS).values()]
        assert sum(sizes) == len(ITEMS)
        assert max(sizes) - min(sizes) <= 1

    def test_unknown_item_routed_deterministically(self):
        # An item outside the declared universe still lands on one valid
        # shard, by its sort position against the range bounds.
        p = RangePartitioner(3, ITEMS)
        shard = p.shard_of("zzz-not-declared")
        assert 0 <= shard < 3
        assert p.shard_of("zzz-not-declared") == shard

    def test_more_shards_than_items_leaves_empty_tail(self):
        p = RangePartitioner(5, ("a", "b", "c"))
        assignment = p.assignment(("a", "b", "c"))
        assert sorted(assignment) == [0, 1, 2, 3, 4]
        assert [len(v) for v in assignment.values()].count(0) == 2


class TestFactory:
    def test_make_hash_and_range(self):
        assert isinstance(make_partitioner("hash", 2, ITEMS), HashPartitioner)
        assert isinstance(make_partitioner("range", 2, ITEMS),
                          RangePartitioner)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecificationError):
            make_partitioner("modulo-of-vibes", 2, ITEMS)

    @pytest.mark.parametrize("bad", (0, -1))
    def test_nonpositive_shard_count_rejected(self, bad):
        with pytest.raises(SpecificationError):
            HashPartitioner(bad)
        with pytest.raises(SpecificationError):
            RangePartitioner(bad, ITEMS)
