"""Unit tests for run metrics (repro.trace.metrics)."""

import pytest

from repro.engine.simulator import SimConfig
from repro.trace.metrics import compute_metrics
from tests.conftest import run


class TestComputeMetrics:
    def test_example1_rw_pcp_blocking_totals(self, ex1):
        metrics = compute_metrics(run(ex1, "rw-pcp"))
        assert metrics.total_blocking_time == pytest.approx(3.0)  # 2 + 1
        assert metrics.max_blocking_time == pytest.approx(2.0)
        assert metrics.mean_blocking_time == pytest.approx(1.0)

    def test_example1_pcp_da_no_blocking(self, ex1):
        metrics = compute_metrics(run(ex1, "pcp-da"))
        assert metrics.total_blocking_time == 0.0
        assert metrics.miss_ratio == 0.0
        assert metrics.total_restarts == 0

    def test_per_transaction_blocking_takes_max_over_instances(self, ex3):
        metrics = compute_metrics(
            run(ex3, "rw-pcp", SimConfig(horizon=11.0, max_instances=2))
        )
        per_txn = metrics.per_transaction_blocking()
        assert per_txn["T1"] == pytest.approx(4.0)  # worst instance
        assert metrics.blocking_of("T2") == 0.0
        assert metrics.blocking_of("unknown") == 0.0

    def test_miss_ratio(self, ex3):
        metrics = compute_metrics(
            run(ex3, "rw-pcp", SimConfig(horizon=11.0, max_instances=2))
        )
        # 3 jobs total (T1#0, T1#1, T2#0); T1#0 misses.
        assert metrics.total_jobs == 3
        assert metrics.missed_jobs == 1
        assert metrics.miss_ratio == pytest.approx(1 / 3)

    def test_job_metrics_fields(self, ex1):
        metrics = compute_metrics(run(ex1, "rw-pcp"))
        jm = next(m for m in metrics.jobs if m.job == "T2#0")
        assert jm.transaction == "T2"
        assert jm.arrival == 1.0
        assert jm.finish == 5.0
        assert jm.response_time == 4.0
        assert jm.distinct_blockers == frozenset({"T3"})

    def test_max_sysceil_recorded(self, ex4):
        da = compute_metrics(run(ex4, "pcp-da"))
        rw = compute_metrics(run(ex4, "rw-pcp"))
        assert da.max_sysceil == 3   # P2
        assert rw.max_sysceil == 4   # P1

    def test_mean_response_time(self, ex1):
        metrics = compute_metrics(run(ex1, "pcp-da"))
        # finishes: T1 3-2=1, T2 2-1=1, T3 5-0=5
        assert metrics.mean_response_time == pytest.approx((1 + 1 + 5) / 3)

    def test_executed_time_equals_c_for_committed_jobs(self, ex4):
        metrics = compute_metrics(run(ex4, "pcp-da"))
        for jm in metrics.jobs:
            spec = next(
                s for s in run(ex4, "pcp-da").taskset if s.name == jm.transaction
            )
            assert jm.executed_time == pytest.approx(spec.execution_time)

    def test_interference_decomposition(self, ex4):
        """response = executed + blocking + interference, per job."""
        metrics = compute_metrics(run(ex4, "rw-pcp"))
        for jm in metrics.jobs:
            assert jm.response_time == pytest.approx(
                jm.executed_time + jm.blocking_time + jm.interference_time
            )
        # T3 under RW-PCP: blocked 4, executed 2, response 8 -> 2 interference.
        t3 = next(m for m in metrics.jobs if m.job == "T3#0")
        assert t3.interference_time == pytest.approx(2.0)

    def test_ipcp_turns_blocking_into_interference(self):
        """The IPCP signature: zero blocking, nonzero interference where
        PCP would have blocked."""
        from repro.model.priorities import assign_by_order
        from repro.model.spec import TransactionSpec, compute, read

        ts = assign_by_order([
            TransactionSpec("H", (read("x", 1.0),), offset=9.0),
            TransactionSpec("M", (compute(1.0),), offset=1.0),
            TransactionSpec("L", (read("x", 3.0),), offset=0.0),
        ])
        metrics = compute_metrics(run(ts, "ipcp"))
        m = next(jm for jm in metrics.jobs if jm.job == "M#0")
        assert m.blocking_time == 0.0
        assert m.interference_time == pytest.approx(2.0)  # waited for L

    def test_restart_count_from_2pl_hp(self):
        from repro.model.priorities import assign_by_order
        from repro.model.spec import TransactionSpec, read, write

        ts = assign_by_order([
            TransactionSpec("H", (write("x", 1.0),), offset=1.0),
            TransactionSpec("L", (read("x", 3.0),), offset=0.0),
        ])
        metrics = compute_metrics(run(ts, "2pl-hp"))
        assert metrics.total_restarts == 1
