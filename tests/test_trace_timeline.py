"""Unit tests for timeline building (repro.trace.timeline)."""

import pytest

from repro.engine.simulator import SimConfig
from repro.trace.timeline import SegmentKind, build_timeline
from tests.conftest import run


class TestTimelineExample1:
    @pytest.fixture
    def timeline(self, ex1):
        return build_timeline(run(ex1, "rw-pcp"))

    def test_t3_executes_continuously(self, timeline):
        t3 = timeline.for_job("T3#0")
        execs = t3.executing()
        assert len(execs) == 1
        assert (execs[0].start, execs[0].end) == (0.0, 3.0)

    def test_t2_blocked_then_preempted_then_executes(self, timeline):
        t2 = timeline.for_job("T2#0")
        kinds = [s.kind for s in t2.segments]
        assert kinds == [
            SegmentKind.BLOCKED,
            SegmentKind.PREEMPTED,
            SegmentKind.EXECUTING,
        ]
        blocked = t2.blocked()[0]
        assert (blocked.start, blocked.end) == (1.0, 3.0)

    def test_t1_blocked_one_unit(self, timeline):
        t1 = timeline.for_job("T1#0")
        assert t1.blocked()[0].duration == 1.0

    def test_segments_cover_lifetime_without_overlap(self, timeline):
        for jt in timeline.jobs:
            cursor = jt.arrival
            for seg in jt.segments:
                assert seg.start >= cursor - 1e-9
                cursor = seg.end
            assert jt.finish is not None
            assert cursor == pytest.approx(jt.finish)


class TestTimelineAccessors:
    def test_for_transaction_groups_instances(self, ex3):
        result = run(ex3, "pcp-da", SimConfig(horizon=11.0, max_instances=2))
        timeline = build_timeline(result)
        t1_instances = timeline.for_transaction("T1")
        assert [jt.job for jt in t1_instances] == ["T1#0", "T1#1"]

    def test_missing_job_raises(self, ex1):
        timeline = build_timeline(run(ex1, "pcp-da"))
        with pytest.raises(KeyError):
            timeline.for_job("nope#0")

    def test_preempted_segments_computed(self, ex1):
        timeline = build_timeline(run(ex1, "pcp-da"))
        t3 = timeline.for_job("T3#0")
        # T3 runs 0-1, is preempted 1-3 (T2 then T1), resumes 3-5.
        preempted = t3.preempted()
        assert len(preempted) == 1
        assert (preempted[0].start, preempted[0].end) == (1.0, 3.0)
        assert sum(s.duration for s in t3.executing()) == pytest.approx(3.0)
