"""Unit tests for the ASCII Gantt renderer (repro.trace.gantt)."""

import pytest

from repro.engine.simulator import SimConfig
from repro.trace.gantt import render_gantt
from tests.conftest import run


class TestRenderGantt:
    def test_rows_ordered_by_priority(self, ex1):
        text = render_gantt(run(ex1, "rw-pcp"))
        lines = text.splitlines()
        t1_line = next(i for i, l in enumerate(lines) if l.startswith("T1"))
        t3_line = next(i for i, l in enumerate(lines) if l.startswith("T3"))
        assert t1_line < t3_line

    def test_glyphs_for_example1(self, ex1):
        text = render_gantt(run(ex1, "rw-pcp"), show_markers=False)
        rows = {
            line.split()[0]: line[3:]
            for line in text.splitlines()
            if line.startswith("T")
        }
        assert rows["T3"].startswith("###")
        assert rows["T2"][1] == "b"  # blocked at t=1
        assert rows["T1"][2] == "b"  # blocked at t=2

    def test_markers_present(self, ex1):
        text = render_gantt(run(ex1, "rw-pcp"))
        assert "^" in text and "v" in text

    def test_legend_always_present(self, ex1):
        text = render_gantt(run(ex1, "pcp-da"))
        assert "#=executing" in text

    def test_truncation_note(self, ex3):
        result = run(ex3, "pcp-da", SimConfig(horizon=11.0, max_instances=2))
        text = render_gantt(result, width_limit=5)
        assert "truncated" in text

    def test_execution_glyph_wins_in_shared_cell(self, ex1):
        """When a cell straddles blocked/executing boundaries, '#' wins."""
        text = render_gantt(run(ex1, "rw-pcp"), show_markers=False)
        t1_row = next(l for l in text.splitlines() if l.startswith("T1"))
        assert t1_row[3 + 3] == "#"  # executes during [3,4)

    def test_ruler_has_tens_row_for_long_runs(self, ex4):
        text = render_gantt(run(ex4, "pcp-da"))
        lines = text.splitlines()
        # first two lines are the tens and units rulers
        assert "1" in lines[0]
        assert lines[1].lstrip().startswith("0123456789")


class TestRenderGanttComparison:
    def test_stacked_blocks(self, ex4):
        from repro.trace.gantt import render_gantt_comparison

        text = render_gantt_comparison([run(ex4, "pcp-da"), run(ex4, "rw-pcp")])
        assert "--- pcp-da ---" in text
        assert "--- rw-pcp ---" in text
        # The RW-PCP block shows blocking; the PCP-DA block must not.
        da_block, rw_block = text.split("--- rw-pcp ---")
        assert "b" not in da_block.split("#=executing")[0].replace(
            "--- pcp-da ---", ""
        ).replace("blocked", "")
        assert "b" in rw_block

    def test_requires_two_runs(self, ex4):
        from repro.trace.gantt import render_gantt_comparison

        with pytest.raises(ValueError):
            render_gantt_comparison([run(ex4, "pcp-da")])

    def test_requires_same_taskset(self, ex1, ex4):
        from repro.trace.gantt import render_gantt_comparison

        with pytest.raises(ValueError, match="same task set"):
            render_gantt_comparison([run(ex1, "pcp-da"), run(ex4, "pcp-da")])
