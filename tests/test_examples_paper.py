"""Exact reproduction of the paper's worked examples (Figures 1-5).

Every assertion in this file corresponds to a sentence of the paper's
Section 3 / Section 6 / Section 7 narration or a feature of its figures:
grant instants, the locking condition that fired, blocking intervals with
their classification, completion times, deadline outcomes, and the
``Max_Sysceil`` dotted-line traces.
"""

import pytest

from repro.engine.simulator import SimConfig
from repro.model.spec import DUMMY_PRIORITY, LockMode
from repro.trace.recorder import LockOutcome
from repro.trace.sysceil import SysceilTrace
from repro.verify import verify_pcp_da_run
from tests.conftest import blocking, finish, run


class TestExample1RWPCP:
    """Figure 1: unnecessary blockings under RW-PCP."""

    @pytest.fixture
    def result(self, ex1):
        return run(ex1, "rw-pcp")

    def test_t3_write_locks_x_at_0_and_completes_at_3(self, result):
        grants = result.trace.grants_for("T3#0")
        assert grants[0].time == 0.0 and grants[0].item == "x"
        assert finish(result, "T3#0") == 3.0

    def test_t2_suffers_ceiling_blocking_though_y_is_free(self, result):
        denials = result.trace.denials_for("T2#0")
        assert denials[0].time == 1.0
        assert denials[0].item == "y"
        assert "ceiling" in denials[0].rule
        assert blocking(result, "T2#0") == 2.0  # blocked t=1..3

    def test_t1_suffers_conflict_blocking_on_x(self, result):
        denials = result.trace.denials_for("T1#0")
        assert denials[0].time == 2.0
        assert denials[0].item == "x"
        assert "conflict" in denials[0].rule
        assert blocking(result, "T1#0") == 1.0  # blocked t=2..3

    def test_t3_inherits_waiters_priorities(self, result):
        """T3 inherits P2 at t=1 and then P1 at t=2 (paper narration)."""
        denials_t2 = result.trace.denials_for("T2#0")
        denials_t1 = result.trace.denials_for("T1#0")
        assert denials_t2[0].blockers == ("T3#0",)
        assert denials_t1[0].blockers == ("T3#0",)

    def test_wakeup_order_after_t3_commits(self, result):
        """T1 (higher priority) is awakened first, completes at 4; then T2
        completes at 5."""
        assert finish(result, "T1#0") == 4.0
        assert finish(result, "T2#0") == 5.0

    def test_history_serializable(self, result):
        result.check_serializable()


class TestExample1PCPDA:
    """PCP-DA avoids both of Example 1's blockings (Section 3's point)."""

    @pytest.fixture
    def result(self, ex1):
        return run(ex1, "pcp-da")

    def test_nobody_blocks(self, result):
        for job in result.jobs:
            assert job.total_blocking_time() == 0.0

    def test_t1_and_t2_preempt_t3(self, result):
        assert finish(result, "T1#0") == 3.0
        assert finish(result, "T2#0") == 2.0
        assert finish(result, "T3#0") == 5.0

    def test_t1_reads_write_locked_x_via_lc2(self, result):
        grants = result.trace.grants_for("T1#0")
        assert grants[0].item == "x" and grants[0].rule == "LC2"

    def test_invariants(self, result):
        verify_pcp_da_run(result)


class TestExample3PCPDA:
    """Figure 2: T1 is never blocked; completions at 3, 8 (T1) and 9 (T2)."""

    @pytest.fixture
    def result(self, ex3):
        return run(ex3, "pcp-da", SimConfig(horizon=11.0, max_instances=2))

    def test_t2_write_locks_x_at_0_via_lc1(self, result):
        grants = result.trace.grants_for("T2#0")
        assert grants[0].time == 0.0
        assert grants[0].item == "x" and grants[0].rule == "LC1"

    def test_t1_first_instance_reads_locked_items_and_finishes_at_3(self, result):
        grants = result.trace.grants_for("T1#0")
        assert [(g.time, g.item, g.rule) for g in grants] == [
            (1.0, "x", "LC2"),
            (2.0, "y", "LC2"),
        ]
        assert finish(result, "T1#0") == 3.0

    def test_t2_write_locks_y_at_5(self, result):
        grants = result.trace.grants_for("T2#0")
        assert (grants[1].time, grants[1].item, grants[1].rule) == (5.0, "y", "LC1")

    def test_t1_second_instance_finishes_at_8(self, result):
        grants = result.trace.grants_for("T1#1")
        assert [(g.time, g.item) for g in grants] == [(6.0, "x"), (7.0, "y")]
        assert finish(result, "T1#1") == 8.0

    def test_t2_completes_at_9(self, result):
        assert finish(result, "T2#0") == 9.0

    def test_no_blocking_and_no_misses(self, result):
        assert all(j.total_blocking_time() == 0.0 for j in result.jobs)
        assert result.missed_jobs == ()

    def test_invariants(self, result):
        verify_pcp_da_run(result)


class TestExample3RWPCP:
    """Figure 3: T1's first instance is blocked t=1..5 and misses at 6."""

    @pytest.fixture
    def result(self, ex3):
        return run(ex3, "rw-pcp", SimConfig(horizon=11.0, max_instances=2))

    def test_t1_blocked_from_1_to_5(self, result):
        t1 = result.job("T1#0")
        assert t1.block_intervals[0].start == 1.0
        assert t1.block_intervals[0].end == 5.0
        assert blocking(result, "T1#0") == 4.0

    def test_t1_first_instance_misses_deadline_at_6(self, result):
        t1 = result.job("T1#0")
        assert t1.absolute_deadline == 6.0
        assert finish(result, "T1#0") == 7.0
        assert t1.missed_deadline

    def test_t2_runs_continuously_and_finishes_at_5(self, result):
        assert finish(result, "T2#0") == 5.0

    def test_conflict_blocking_classification(self, result):
        denials = result.trace.denials_for("T1#0")
        assert denials[0].item == "x"
        assert "conflict" in denials[0].rule

    def test_second_instance_meets_its_deadline(self, result):
        t1b = result.job("T1#1")
        assert finish(result, "T1#1") == 9.0
        assert not t1b.missed_deadline

    def test_history_serializable(self, result):
        result.check_serializable()


class TestExample4PCPDA:
    """Figure 4: LC4 at t=1, LC2 at t=4, Max_Sysceil <= P2."""

    @pytest.fixture
    def result(self, ex4):
        return run(ex4, "pcp-da")

    def test_t4_read_locks_y_at_0(self, result):
        grants = result.trace.grants_for("T4#0")
        assert (grants[0].time, grants[0].item) == (0.0, "y")

    def test_t3_read_locks_z_at_1_via_lc4(self, result):
        grants = result.trace.grants_for("T3#0")
        assert (grants[0].time, grants[0].item, grants[0].rule) == (1.0, "z", "LC4")

    def test_t3_write_locks_z_at_2_via_lc1(self, result):
        grants = result.trace.grants_for("T3#0")
        assert (grants[1].time, grants[1].item, grants[1].rule) == (2.0, "z", "LC1")

    def test_t4_write_locks_x_at_3_via_lc1(self, result):
        grants = result.trace.grants_for("T4#0")
        assert (grants[1].time, grants[1].item, grants[1].rule) == (3.0, "x", "LC1")

    def test_t1_reads_write_locked_x_at_4_via_lc2(self, result):
        grants = result.trace.grants_for("T1#0")
        assert (grants[0].time, grants[0].item, grants[0].rule) == (4.0, "x", "LC2")

    def test_completion_times(self, result):
        assert finish(result, "T3#0") == 3.0
        assert finish(result, "T1#0") == 6.0
        assert finish(result, "T4#0") == 9.0
        assert finish(result, "T2#0") == 11.0

    def test_nobody_blocks(self, result):
        assert all(j.total_blocking_time() == 0.0 for j in result.jobs)

    def test_max_sysceil_is_p2_and_dummy_after_9(self, result):
        trace = SysceilTrace.from_result(result)
        p2 = 3
        assert trace.max_level == p2
        assert trace.level_at(5.0) == p2
        assert trace.level_at(9.5) == DUMMY_PRIORITY

    def test_invariants(self, result):
        verify_pcp_da_run(result)


class TestExample4RWPCP:
    """Figure 5: T3 ceiling-blocked 4 units, T1 conflict-blocked 1 unit;
    Max_Sysceil reaches P1."""

    @pytest.fixture
    def result(self, ex4):
        return run(ex4, "rw-pcp")

    def test_t3_ceiling_blocked_for_4_units(self, result):
        t3 = result.job("T3#0")
        assert t3.block_intervals[0].start == 1.0
        assert t3.block_intervals[0].end == 5.0
        assert blocking(result, "T3#0") == 4.0
        denial = result.trace.denials_for("T3#0")[0]
        assert "ceiling" in denial.rule  # z itself is free!

    def test_t1_conflict_blocked_for_1_unit(self, result):
        assert blocking(result, "T1#0") == 1.0
        denial = result.trace.denials_for("T1#0")[0]
        assert denial.item == "x"
        assert "conflict" in denial.rule

    def test_completion_times(self, result):
        assert finish(result, "T4#0") == 5.0
        assert finish(result, "T1#0") == 7.0
        assert finish(result, "T3#0") == 9.0
        assert finish(result, "T2#0") == 11.0

    def test_max_sysceil_reaches_p1(self, result):
        trace = SysceilTrace.from_result(result)
        p1 = 4
        assert trace.max_level == p1

    def test_effective_blocking_matches_paper(self, result):
        """Paper: 'the effective blocking times of T1 and T3 blocked by T4
        are 1 and 4 time units respectively'."""
        t1_blockers = result.job("T1#0").block_intervals[0].blockers
        t3_blockers = result.job("T3#0").block_intervals[0].blockers
        assert t1_blockers == ("T4#0",)
        assert t3_blockers == ("T4#0",)

    def test_history_serializable(self, result):
        result.check_serializable()


class TestExample4CrossProtocol:
    """Section 6's comparison claims, quantified."""

    def test_pcp_da_blocking_is_subset_of_rw_pcp(self, ex4):
        da = run(ex4, "pcp-da")
        rw = run(ex4, "rw-pcp")
        da_blocked = {j.name for j in da.jobs if j.total_blocking_time() > 0}
        rw_blocked = {j.name for j in rw.jobs if j.total_blocking_time() > 0}
        assert da_blocked <= rw_blocked
        assert da_blocked == set()

    def test_max_sysceil_pushdown(self, ex4):
        """'The push-down of Max_Sysceil is one of the main advantages of
        PCP-DA over RW-PCP.'"""
        da = SysceilTrace.from_result(run(ex4, "pcp-da"))
        rw = SysceilTrace.from_result(run(ex4, "rw-pcp"))
        assert da.max_level < rw.max_level


class TestExample5:
    """Section 7: conditions (1)/(2) deadlock; LC3/LC4 do not."""

    def test_weak_protocol_deadlocks(self, ex5):
        result = run(ex5, "weak-pcp-da", SimConfig(deadlock_action="halt"))
        assert result.deadlock is not None
        assert set(result.deadlock.cycle) == {"TH#0", "TL#0"}

    def test_weak_protocol_grant_sequence_matches_paper(self, ex5):
        """TL read-locks x via condition (1); TH read-locks y via (2)."""
        result = run(ex5, "weak-pcp-da", SimConfig(deadlock_action="halt"))
        tl_grant = result.trace.grants_for("TL#0")[0]
        th_grant = result.trace.grants_for("TH#0")[0]
        assert tl_grant.item == "x" and "cond(1)" in tl_grant.rule
        assert th_grant.item == "y" and "cond(2)" in th_grant.rule

    def test_real_pcp_da_blocks_th_instead(self, ex5):
        result = run(ex5, "pcp-da")
        assert result.deadlock is None
        th = result.job("TH#0")
        denial = result.trace.denials_for("TH#0")[0]
        assert denial.item == "y"
        assert finish(result, "TL#0") == 3.0
        assert finish(result, "TH#0") == 5.0
        verify_pcp_da_run(result)

    def test_raise_mode_raises(self, ex5):
        from repro.exceptions import DeadlockError
        with pytest.raises(DeadlockError):
            run(ex5, "weak-pcp-da")
