"""Unit tests for the transaction/task-set model (repro.model.spec)."""

import pytest

from repro.exceptions import SpecificationError
from repro.model.spec import (
    DUMMY_PRIORITY,
    LockMode,
    OpKind,
    Operation,
    TaskSet,
    TransactionSpec,
    compute,
    read,
    write,
)


class TestOperation:
    def test_read_constructor(self):
        op = read("x", 2.5)
        assert op.kind is OpKind.READ
        assert op.item == "x"
        assert op.duration == 2.5
        assert op.lock_mode is LockMode.READ

    def test_write_constructor(self):
        op = write("y")
        assert op.kind is OpKind.WRITE
        assert op.duration == 1.0
        assert op.lock_mode is LockMode.WRITE

    def test_compute_constructor(self):
        op = compute(3.0)
        assert op.kind is OpKind.COMPUTE
        assert op.item is None
        assert op.lock_mode is None

    def test_negative_duration_rejected(self):
        with pytest.raises(SpecificationError):
            read("x", -1.0)

    def test_zero_duration_allowed(self):
        assert read("x", 0.0).duration == 0.0

    def test_compute_with_item_rejected(self):
        with pytest.raises(SpecificationError):
            Operation(OpKind.COMPUTE, "x", 1.0)

    def test_data_op_without_item_rejected(self):
        with pytest.raises(SpecificationError):
            Operation(OpKind.READ, None, 1.0)
        with pytest.raises(SpecificationError):
            Operation(OpKind.WRITE, "", 1.0)

    def test_describe(self):
        assert read("x", 1.0).describe() == "Read(x, 1)"
        assert write("y", 2.0).describe() == "Write(y, 2)"
        assert compute(0.5).describe() == "Compute(0.5)"


class TestTransactionSpec:
    def test_basic_properties(self):
        spec = TransactionSpec(
            "T1", (read("x"), write("y", 2.0), compute(1.0)), priority=3,
            period=10.0,
        )
        assert spec.execution_time == 4.0
        assert spec.read_set == frozenset({"x"})
        assert spec.write_set == frozenset({"y"})
        assert spec.access_set == frozenset({"x", "y"})
        assert spec.utilization == pytest.approx(0.4)
        assert spec.relative_deadline == 10.0

    def test_read_write_same_item(self):
        spec = TransactionSpec("T", (read("z"), write("z")))
        assert spec.read_set == frozenset({"z"})
        assert spec.write_set == frozenset({"z"})

    def test_empty_operations_rejected(self):
        with pytest.raises(SpecificationError):
            TransactionSpec("T", ())

    def test_empty_name_rejected(self):
        with pytest.raises(SpecificationError):
            TransactionSpec("", (read("x"),))

    def test_nonpositive_period_rejected(self):
        with pytest.raises(SpecificationError):
            TransactionSpec("T", (read("x"),), period=0.0)

    def test_negative_offset_rejected(self):
        with pytest.raises(SpecificationError):
            TransactionSpec("T", (read("x"),), offset=-1.0)

    def test_dummy_priority_rejected(self):
        with pytest.raises(SpecificationError):
            TransactionSpec("T", (read("x"),), priority=DUMMY_PRIORITY)

    def test_aperiodic_has_no_deadline_or_utilization(self):
        spec = TransactionSpec("T", (read("x"),))
        assert spec.relative_deadline is None
        assert spec.utilization == 0.0

    def test_explicit_deadline_overrides_period(self):
        spec = TransactionSpec("T", (read("x"),), period=10.0, deadline=7.0)
        assert spec.relative_deadline == 7.0

    def test_with_priority_copies(self):
        spec = TransactionSpec("T", (read("x"),), period=5.0)
        copy = spec.with_priority(4)
        assert copy.priority == 4
        assert spec.priority is None
        assert copy.operations == spec.operations
        assert copy.period == spec.period

    def test_describe_mentions_ops_and_c(self):
        spec = TransactionSpec("T9", (read("x"),), priority=1)
        text = spec.describe()
        assert "T9" in text and "Read(x" in text and "C=1" in text


class TestTaskSet:
    def _specs(self):
        return [
            TransactionSpec("A", (read("x"),), priority=2, period=5.0),
            TransactionSpec("B", (write("x"),), priority=1, period=10.0),
        ]

    def test_sorted_by_descending_priority(self):
        ts = TaskSet(reversed(self._specs()))
        assert ts.names == ("A", "B")

    def test_lookup_and_contains(self):
        ts = TaskSet(self._specs())
        assert "A" in ts
        assert ts["A"].priority == 2
        with pytest.raises(SpecificationError):
            ts["missing"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SpecificationError):
            TaskSet([
                TransactionSpec("A", (read("x"),), priority=1),
                TransactionSpec("A", (read("y"),), priority=2),
            ])

    def test_duplicate_priorities_rejected(self):
        with pytest.raises(SpecificationError):
            TaskSet([
                TransactionSpec("A", (read("x"),), priority=1),
                TransactionSpec("B", (read("y"),), priority=1),
            ])

    def test_mixed_priority_presence_rejected(self):
        with pytest.raises(SpecificationError):
            TaskSet([
                TransactionSpec("A", (read("x"),), priority=1),
                TransactionSpec("B", (read("y"),)),
            ])

    def test_empty_taskset_rejected(self):
        with pytest.raises(SpecificationError):
            TaskSet([])

    def test_items_union(self):
        ts = TaskSet(self._specs())
        assert ts.items == frozenset({"x"})

    def test_readers_and_writers(self):
        ts = TaskSet(self._specs())
        assert [s.name for s in ts.readers_of("x")] == ["A"]
        assert [s.name for s in ts.writers_of("x")] == ["B"]
        assert ts.readers_of("nothing") == ()

    def test_total_utilization(self):
        ts = TaskSet(self._specs())
        assert ts.total_utilization() == pytest.approx(1 / 5 + 1 / 10)

    def test_hyperperiod(self):
        ts = TaskSet(self._specs())
        assert ts.hyperperiod() == 10.0

    def test_hyperperiod_none_for_aperiodic(self):
        ts = TaskSet([TransactionSpec("A", (read("x"),), priority=1)])
        assert ts.hyperperiod() is None

    def test_hyperperiod_none_for_fractional_period(self):
        ts = TaskSet(
            [TransactionSpec("A", (read("x"),), priority=1, period=2.5)]
        )
        assert ts.hyperperiod() is None

    def test_scaled(self):
        ts = TaskSet(self._specs()).scaled(2.0)
        assert ts["A"].execution_time == 2.0
        assert ts["A"].period == 5.0  # periods unchanged

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(SpecificationError):
            TaskSet(self._specs()).scaled(0.0)

    def test_priority_of(self):
        ts = TaskSet(self._specs())
        assert ts.priority_of("B") == 1
