"""4-shard serializability replay acceptance (in-process, tier-1-safe).

The sharded deployment's core promise, checked the only way that counts:
run the stock load generator against a 4-shard :class:`ShardedLockManager`
and let the *client-side* oracle replay the merged history — the same
``check_serializable`` verdict the unsharded service answers to, computed
from shipped wire rows (``history_from_events``), not server say-so.
The socket is skipped (``in_process_client``) so the test stays in the
``make verify-sharding`` tier; the TCP twin lives in
``tests/test_sharding_soak.py`` under the ``sharding_soak`` marker.
"""

import asyncio

import pytest

from repro.service import (
    LoadgenConfig,
    ServiceConfig,
    ShardedLockManager,
    in_process_client,
    run_loadgen,
)
from repro.workloads.generator import WorkloadConfig, generate_taskset

PROTOCOL = "pcp-da"


def load_sharded(workload, loadcfg, *, shards=4, partitioner="hash",
                 protocol=PROTOCOL):
    """Run the loadgen against a fresh in-process sharded deployment."""

    async def body():
        catalog = generate_taskset(workload)
        manager = ShardedLockManager(
            catalog, protocol, ServiceConfig(),
            shards=shards, partitioner=partitioner,
        )
        try:
            async def connect():
                return in_process_client(manager)

            return await run_loadgen(loadcfg, connect)
        finally:
            await manager.shutdown()

    return asyncio.run(body())


class TestFourShardReplay:
    def test_replay_is_serializable_and_complete(self):
        report = load_sharded(
            WorkloadConfig(
                n_transactions=8, n_items=10, write_probability=0.5, seed=11,
            ),
            LoadgenConfig(clients=12, transactions_per_client=8, seed=5),
        )
        assert report.serializable, report.violation
        assert report.completed == 12 * 8
        assert report.forced_aborts == 0
        assert report.deadline_misses == 0
        assert report.transport_errors == 0
        doc = report.stats_doc
        assert doc["shard_count"] == 4
        assert len(doc["shards"]) == 4
        # The workload genuinely exercised the cross-shard machinery.
        assert doc["coordinator"]["cross_shard_commits"] > 0
        assert doc["coordinator"]["constraint_merges"] > 0

    def test_range_partitioner_replay(self):
        report = load_sharded(
            WorkloadConfig(
                n_transactions=6, n_items=8, write_probability=0.5, seed=3,
            ),
            LoadgenConfig(clients=8, transactions_per_client=6, seed=2),
            partitioner="range",
        )
        assert report.serializable, report.violation
        assert report.completed == 8 * 6
        assert report.forced_aborts == 0

    def test_contended_run_exercises_the_gate(self):
        # Few items, many clients: passes and gate parks are forced.
        # Cross-shard deadlock victims are allowed here — per-shard
        # ceilings void the paper's deadlock-freedom theorem (see
        # docs/SHARDING.md), so the invariant is *accounted resolution*
        # plus a serializable replay, not zero aborts.
        report = load_sharded(
            WorkloadConfig(
                n_transactions=6, n_items=6, write_probability=0.6, seed=29,
            ),
            LoadgenConfig(clients=16, transactions_per_client=6, seed=13),
        )
        assert report.serializable, report.violation
        accounted = (report.completed + report.forced_aborts
                     + report.transport_errors)
        assert accounted == 16 * 6
        assert report.completed > 0
        coordinator = report.stats_doc["coordinator"]
        assert coordinator["gate_waits"] > 0

    @pytest.mark.parametrize("protocol", ["2pl-hp", "occ-bc"])
    def test_abort_heavy_protocols_stay_serializable(self, protocol):
        # HP displacement and OCC broadcast aborts cross the coordinator
        # as cascades; the merged history must still replay clean (the
        # run may abort transactions, but never corrupt the order).
        report = load_sharded(
            WorkloadConfig(
                n_transactions=5, n_items=6, write_probability=0.5, seed=11,
            ),
            LoadgenConfig(clients=8, transactions_per_client=5, seed=9),
            protocol=protocol,
        )
        assert report.serializable, report.violation
        # A victim cascaded while *idle* surfaces as SessionStateError
        # on its next operation (same as the unsharded manager), which
        # the loadgen counts under transport_errors — account for all
        # three buckets, not just clean commits and in-flight aborts.
        accounted = (report.completed + report.forced_aborts
                     + report.transport_errors)
        assert accounted == 8 * 5
        assert report.completed > 0
