"""Tests for the shard coordinator (repro.service.sharding.coordinator).

All in-process and socket-free (``make verify-sharding`` tier): shards
and the coordinator are driven directly or through the in-process wire
client, with explicit interleavings built from bare ``asyncio`` tasks —
no pytest-asyncio.  The catalogs are hand-built so that every routing,
gate, and guard decision is forced, not probabilistic: a range
partitioner over a known item universe makes each item's owning shard
part of the test's arithmetic.
"""

import asyncio

import pytest

from repro.db.serializability import check_serializable
from repro.exceptions import (
    AdmissionError,
    DeadlineExceeded,
    SessionStateError,
    SpecificationError,
    TransactionAborted,
)
from repro.model.priorities import assign_by_order
from repro.model.spec import TaskSet, TransactionSpec, read, write
from repro.service import (
    LoadgenConfig,
    LockManager,
    ServiceConfig,
    ShardedLockManager,
    in_process_client,
    run_loadgen,
)
from repro.service.loadgen import history_from_events
from repro.service.manager import SessionState


def catalog_two_shards() -> TaskSet:
    """Items {a, b} land on shard 0, {f} on shard 1 (range over 2).

    R (highest) reads b; RF reads f and writes a (cross-shard); W
    (lowest) writes b and f — the canonical passable writer.
    """
    r = TransactionSpec("R", (read("b", 1.0),))
    rf = TransactionSpec("RF", (read("f", 1.0), write("a", 1.0)))
    w = TransactionSpec("W", (write("b", 1.0), write("f", 1.0)))
    return assign_by_order([r, rf, w])


def make_manager(**kwargs) -> ShardedLockManager:
    """A 2-shard range-partitioned manager over the canonical catalog."""
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("partitioner", "range")
    catalog = kwargs.pop("catalog", None) or catalog_two_shards()
    config = kwargs.pop("config", None)
    return ShardedLockManager(catalog, "pcp-da", config, **kwargs)


def run(coro):
    """Run one async test body on a fresh event loop."""
    return asyncio.run(coro)


async def settle(steps: int = 5) -> None:
    """Let every ready callback on the loop run."""
    for _ in range(steps):
        await asyncio.sleep(0)


class TestSpanAndRouting:
    def test_span_classifies_local_vs_global(self):
        async def body():
            mgr = make_manager()
            local = await mgr.begin("R")
            assert local.span == frozenset({0})
            assert local.scope == "local"
            cross = await mgr.begin("W")
            assert cross.span == frozenset({0, 1})
            assert cross.scope == "global"
            assert mgr.sharding_stats.local_sessions == 1
            assert mgr.sharding_stats.cross_shard_sessions == 1
            await mgr.shutdown()

        run(body())

    def test_writes_install_on_owning_shard_only(self):
        async def body():
            mgr = make_manager()
            session = await mgr.begin("W")
            await mgr.write(session, "b", "b-val")
            await mgr.write(session, "f", "f-val")
            assert sorted(session.legs) == [0, 1]
            summary = await mgr.commit(session)
            assert summary["installed"] == ["b", "f"]
            assert summary["shards"] == [0, 1]
            assert mgr.shards[0].db.read_committed("b").value == "b-val"
            assert mgr.shards[1].db.read_committed("f").value == "f-val"
            # The non-owning shard never saw the other item's install.
            assert mgr.shards[1].db.read_committed("b").value is None
            assert mgr.shards[0].db.read_committed("f").value is None
            assert mgr.sharding_stats.cross_shard_commits == 1
            await mgr.shutdown()

        run(body())

    def test_single_leg_commit_takes_fast_path(self):
        async def body():
            mgr = make_manager()
            # W's *span* is global, but this instance only ever touches
            # shard 0 — commit must delegate to the home shard, no gate.
            session = await mgr.begin("W")
            await mgr.write(session, "b", 1)
            summary = await mgr.commit(session)
            assert summary["shards"] == [0]
            assert summary["installed"] == ["b"]
            assert mgr.sharding_stats.gate_waits == 0
            assert mgr.sharding_stats.cross_shard_commits == 0
            await mgr.shutdown()

        run(body())

    def test_zero_leg_commit(self):
        async def body():
            mgr = make_manager()
            session = await mgr.begin("R")
            summary = await mgr.commit(session)
            assert summary["installed"] == []
            assert summary["shards"] == []
            assert session.state is SessionState.COMMITTED
            assert mgr.stats.commits == 1
            await mgr.shutdown()

        run(body())

    def test_protocol_name_must_be_a_string(self):
        with pytest.raises(SpecificationError):
            ShardedLockManager(catalog_two_shards(), object())  # type: ignore[arg-type]

    def test_partitioner_shard_count_must_match(self):
        from repro.service.sharding import HashPartitioner

        with pytest.raises(SpecificationError):
            ShardedLockManager(
                catalog_two_shards(), "pcp-da", shards=2,
                partitioner=HashPartitioner(3),
            )


class TestGateAndGuard:
    def test_cross_shard_commit_gated_on_merged_predecessors(self):
        async def body():
            mgr = make_manager()
            writer = await mgr.begin("W")
            await mgr.write(writer, "b", "new")
            await mgr.write(writer, "f", "new")
            reader = await mgr.begin("R")
            # The read passes W's write lock on shard 0: R ≺ W recorded
            # in that shard's registry only.
            await mgr.read(reader, "b")
            commit_task = asyncio.ensure_future(mgr.commit(writer))
            await settle()
            # The *global* gate must see the shard-0 constraint even
            # though the commit also spans shard 1.
            assert not commit_task.done()
            assert writer.state is SessionState.WAITING
            assert mgr.sharding_stats.gate_waits == 1
            assert mgr._coord_waits[writer].kind == "commit gate"
            await mgr.commit(reader)
            await commit_task
            assert writer.state is SessionState.COMMITTED
            history = history_from_events(mgr.history_events())
            graph = check_serializable(history)
            order = graph.topological_order()
            assert order.index("R#0") < order.index("W#0")
            await mgr.shutdown()

        run(body())

    def test_gate_opens_on_predecessor_abort(self):
        async def body():
            mgr = make_manager()
            writer = await mgr.begin("W")
            await mgr.write(writer, "b", "new")
            await mgr.write(writer, "f", "new")
            reader = await mgr.begin("R")
            await mgr.read(reader, "b")
            commit_task = asyncio.ensure_future(mgr.commit(writer))
            await settle()
            assert not commit_task.done()
            await mgr.abort(reader, "client")
            await commit_task
            assert writer.state is SessionState.COMMITTED
            check_serializable(history_from_events(mgr.history_events()))
            await mgr.shutdown()

        run(body())

    def test_coordinator_guard_covers_remote_predecessors(self):
        async def body():
            # B ≺ A is recorded on shard 1 (B's read of e passes A's
            # write lock there); A then reads a on shard 0, where it has
            # no leg and shard 0 holds no constraint involving A at all.
            # Only the coordinator's merged graph can hold that read back
            # until B (which writes a) finishes.
            a = TransactionSpec("A", (write("e", 1.0), read("a", 1.0)))
            b = TransactionSpec("B", (read("e", 1.0), write("a", 1.0)))
            mgr = ShardedLockManager(
                assign_by_order([b, a]), "pcp-da",
                shards=2, partitioner="range",
            )
            sa = await mgr.begin("A")
            await mgr.write(sa, "e", "a-val")
            sb = await mgr.begin("B")
            await mgr.read(sb, "e")          # B ≺ A, shard 1 only
            await mgr.write(sb, "a", "b-val")
            read_task = asyncio.ensure_future(mgr.read(sa, "a"))
            await settle()
            assert not read_task.done()
            assert sa.state is SessionState.WAITING
            assert mgr.sharding_stats.guard_waits == 1
            assert mgr._coord_waits[sa].kind == "order guard"
            await mgr.commit(sb)
            value = await read_task          # guard lifts with B gone
            assert value == "b-val"
            await mgr.commit(sa)
            history = history_from_events(mgr.history_events())
            order = check_serializable(history).topological_order()
            assert order.index("B#0") < order.index("A#0")
            await mgr.shutdown()

        run(body())

    def test_one_shard_guard_never_fires(self):
        async def body():
            # On a 1-shard deployment the remote remainder is empty by
            # construction: the same interleaving that parks at the
            # coordinator guard above must run entirely shard-side.
            mgr = make_manager(shards=1)
            writer = await mgr.begin("W")
            await mgr.write(writer, "b", "new")
            reader = await mgr.begin("R")
            await mgr.read(reader, "b")
            assert mgr.sharding_stats.guard_waits == 0
            commit_task = asyncio.ensure_future(mgr.commit(writer))
            await settle()
            # Parked *shard-side* at the local gate, not the global one.
            assert not commit_task.done()
            assert mgr.sharding_stats.gate_waits == 0
            await mgr.commit(reader)
            await commit_task
            await mgr.shutdown()

        run(body())


class TestFailurePaths:
    def test_shard_side_abort_cascades_to_all_legs(self):
        async def body():
            mgr = make_manager()
            session = await mgr.begin("W")
            await mgr.write(session, "b", 1)
            await mgr.write(session, "f", 2)
            # A shard kills the leg behind the coordinator's back (the
            # shape of a shard-local deadlock victim).
            mgr.shards[1].force_abort(session.legs[1], "test-injected")
            mgr._sweep()
            assert session.state is SessionState.ABORTED
            assert session.abort_reason.startswith("shard:")
            assert not session.legs[0].state.live  # sibling torn down too
            assert mgr.sharding_stats.cascade_aborts == 1
            with pytest.raises(SessionStateError):
                await mgr.read(session, "b")
            await mgr.shutdown()

        run(body())

    def test_deadline_enforced_by_coordinator(self):
        async def body():
            mgr = make_manager()
            session = await mgr.begin("W", deadline_s=0.01)
            await asyncio.sleep(0.03)
            with pytest.raises(DeadlineExceeded):
                await mgr.write(session, "b", 1)
            assert session.state is SessionState.ABORTED
            assert mgr.stats.deadline_aborts == 1
            await mgr.shutdown()

        run(body())

    def test_admission_cap_is_global(self):
        async def body():
            mgr = make_manager(config=ServiceConfig(max_sessions=1))
            await mgr.begin("R")
            with pytest.raises(AdmissionError):
                await mgr.begin("W")
            assert mgr.stats.sessions_rejected == 1
            await mgr.shutdown()

        run(body())

    def test_client_abort_releases_every_shard(self):
        async def body():
            mgr = make_manager()
            session = await mgr.begin("W")
            await mgr.write(session, "b", 1)
            await mgr.write(session, "f", 2)
            await mgr.abort(session, "client")
            assert session.state is SessionState.ABORTED
            assert mgr.stats.client_aborts == 1
            # Both shards released their locks: a fresh W sails through.
            again = await mgr.begin("W")
            await mgr.write(again, "b", 3)
            await mgr.write(again, "f", 4)
            await mgr.commit(again)
            assert mgr.shards[0].db.read_committed("b").value == 3
            await mgr.shutdown()

        run(body())

    def test_shutdown_aborts_live_sessions(self):
        async def body():
            mgr = make_manager()
            session = await mgr.begin("W")
            await mgr.write(session, "b", 1)
            await mgr.shutdown()
            assert session.state is SessionState.ABORTED
            with pytest.raises(Exception):
                await mgr.begin("R")

        run(body())

    def test_cross_shard_deadlock_resolved_by_victim_abort(self):
        async def body():
            # Pure 2PL, no ceilings: T1 locks a (shard 0) then wants e
            # (shard 1); T2 locks e then wants a.  Each shard sees one
            # harmless edge — the cycle exists only in the union, which
            # is exactly what the coordinator sweep checks.
            t1 = TransactionSpec("T1", (write("a", 1.0), write("e", 1.0)))
            t2 = TransactionSpec("T2", (write("e", 1.0), write("a", 1.0)))
            mgr = ShardedLockManager(
                assign_by_order([t1, t2]), "2pl",
                shards=2, partitioner="range", sweep_interval_s=0.01,
            )
            s1 = await mgr.begin("T1")
            s2 = await mgr.begin("T2")
            await mgr.write(s1, "a", 1)
            await mgr.write(s2, "e", 2)
            blocked_1 = asyncio.ensure_future(mgr.write(s1, "e", 1))
            await settle()
            blocked_2 = asyncio.ensure_future(mgr.write(s2, "a", 2))
            outcomes = await asyncio.wait_for(
                asyncio.gather(blocked_1, blocked_2, return_exceptions=True),
                timeout=5.0,
            )
            aborted = [o for o in outcomes if isinstance(o, TransactionAborted)]
            assert len(aborted) == 1
            assert "cross-shard deadlock victim" in str(aborted[0])
            assert mgr.sharding_stats.cross_shard_deadlocks == 1
            # Lowest base priority loses: T2 (assigned after T1).
            assert s2.state is SessionState.ABORTED
            await mgr.commit(s1)
            assert s1.state is SessionState.COMMITTED
            check_serializable(history_from_events(mgr.history_events()))
            await mgr.shutdown()

        run(body())


class TestObservability:
    def test_stats_document_shape_and_roundtrip(self):
        async def body():
            mgr = make_manager()
            session = await mgr.begin("W")
            await mgr.write(session, "b", 1)
            await mgr.write(session, "f", 2)
            await mgr.commit(session)
            doc = mgr.stats_document()
            assert doc["shard_count"] == 2
            assert doc["partitioner"] == "range"
            assert len(doc["shards"]) == 2
            # Session-level scalars come from the coordinator: one
            # commit, even though two legs committed shard-side.
            assert doc["commits"] == 1
            assert sum(e["commits"] for e in doc["shards"]) == 2
            assert doc["coordinator"]["cross_shard_commits"] == 1
            from repro.service.stats import ServiceStats

            # Unsharded consumers must read the document unchanged.
            roundtrip = ServiceStats.from_dict(doc)
            assert roundtrip.commits == 1
            await mgr.shutdown()

        run(body())

    def test_topology_document(self):
        mgr = make_manager()
        doc = mgr.topology_document()
        assert doc["shards"] == 2
        assert doc["partitioner"] == "range"
        assert doc["assignment"]["0"] == ["a", "b"]
        assert doc["assignment"]["1"] == ["f"]
        run(mgr.shutdown())

    def test_wire_surface_via_in_process_client(self):
        async def body():
            mgr = make_manager()
            client = in_process_client(mgr)
            ping = await client.ping()
            assert ping["shards"] == 2
            topology = await client.topology()
            assert topology["shards"] == 2
            txn = await client.begin("W")
            assert isinstance(txn.priority, int)
            await txn.write("b", "wire")
            await txn.write("f", "wire")
            summary = await txn.commit()
            assert summary["shards"] == [0, 1]
            events = await client.history()
            check_serializable(history_from_events(events))
            await mgr.shutdown()

        run(body())

    def test_unsharded_topology_fallback(self):
        async def body():
            manager = LockManager(catalog_two_shards(), "pcp-da")
            client = in_process_client(manager)
            assert (await client.ping())["shards"] == 1
            topology = await client.topology()
            assert topology["shards"] == 1
            assert topology["partitioner"] == "none"
            assert topology["assignment"]["0"] == ["a", "b", "f"]
            await manager.shutdown()

        run(body())

    def test_loadgen_reports_shards_and_flags_idle_ones(self):
        async def body():
            # 4 range shards over a 4-item universe whose transactions
            # only ever touch {a, b}: shards 2 and 3 must grant nothing,
            # and the report must say so out loud.
            r = TransactionSpec("R", (read("a", 1.0),))
            w = TransactionSpec("W", (write("b", 1.0),))
            ghost = TransactionSpec("G", (read("y", 1.0), read("z", 1.0)))
            catalog = assign_by_order([r, w, ghost])
            mgr = ShardedLockManager(
                catalog, "pcp-da", shards=4, partitioner="range",
            )

            async def connect():
                return in_process_client(mgr)

            report = await run_loadgen(
                LoadgenConfig(
                    clients=2, transactions_per_client=3, seed=1,
                    mix={"R": 1.0, "W": 1.0},
                ),
                connect,
            )
            assert report.serializable
            assert report.completed == 6
            text = report.render()
            assert "per-shard breakdown:" in text
            assert "granted zero lock requests" in text
            assert "cross-shard" in text  # coordinator counters rendered
            await mgr.shutdown()

        run(body())


class TestManagerSupport:
    """The unsharded manager's coordinator-facing extensions."""

    def test_begin_with_pinned_instance(self):
        async def body():
            manager = LockManager(catalog_two_shards(), "pcp-da")
            pinned = await manager.begin("R", instance=5)
            assert pinned.name == "R#5"
            follow = await manager.begin("R")
            assert follow.name == "R#6"  # counter advanced past the pin
            await manager.shutdown()

        run(body())

    def test_force_abort_is_idempotent(self):
        async def body():
            manager = LockManager(catalog_two_shards(), "pcp-da")
            session = await manager.begin("W")
            await manager.write(session, "b", 1)
            manager.force_abort(session, "test")
            assert session.state is SessionState.ABORTED
            forced = manager.stats.forced_aborts
            manager.force_abort(session, "test-again")
            assert manager.stats.forced_aborts == forced
            await manager.shutdown()

        run(body())
