"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.engine.simulator import SimConfig, Simulator
from repro.protocols import make_protocol
from repro.workloads.examples import (
    example1_taskset,
    example3_taskset,
    example4_taskset,
    example5_taskset,
)


@pytest.fixture
def ex1():
    return example1_taskset()


@pytest.fixture
def ex3():
    return example3_taskset()


@pytest.fixture
def ex4():
    return example4_taskset()


@pytest.fixture
def ex5():
    return example5_taskset()


def run(taskset, protocol_name, config=None, **protocol_kwargs):
    """Simulate ``taskset`` under the named protocol; returns the result."""
    protocol = make_protocol(protocol_name, **protocol_kwargs)
    return Simulator(taskset, protocol, config).run()


def finish(result, job_name):
    """Finish time of a job, asserting it committed."""
    job = result.job(job_name)
    assert job.finish_time is not None, f"{job_name} never finished"
    return job.finish_time


def blocking(result, job_name):
    return result.job(job_name).total_blocking_time()
