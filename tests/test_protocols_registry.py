"""Tests for the protocol registry and shared protocol contracts."""

import pytest

from repro.engine.interfaces import ConcurrencyControlProtocol, InstallPolicy
from repro.exceptions import ProtocolError, UnknownProtocolError
from repro.protocols import available_protocols, make_protocol, register_protocol


EXPECTED = {
    "2pl", "2pl-hp", "ccp", "ipcp", "occ-bc", "pcp", "pcp-da", "pcp-da-checked",
    "pip-2pl", "rw-pcp", "rw-pcp-abort", "weak-pcp-da",
}


class TestRegistry:
    def test_all_protocols_registered(self):
        assert set(available_protocols()) == EXPECTED

    def test_make_protocol_returns_fresh_instances(self):
        a = make_protocol("pcp-da")
        b = make_protocol("pcp-da")
        assert a is not b

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(UnknownProtocolError) as exc:
            make_protocol("nope")
        assert "pcp-da" in str(exc.value)

    def test_kwargs_forwarded(self):
        protocol = make_protocol("pcp-da", enable_lc3=False)
        assert "LC3 off" in protocol.describe()

    def test_duplicate_registration_rejected(self):
        class Dup(ConcurrencyControlProtocol):
            name = "pcp-da"

            def decide(self, job, item, mode):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ProtocolError):
            register_protocol(Dup)

    def test_unnamed_registration_rejected(self):
        class NoName(ConcurrencyControlProtocol):
            def decide(self, job, item, mode):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ProtocolError):
            register_protocol(NoName)


class TestProtocolContracts:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_describe_is_nonempty(self, name):
        assert make_protocol(name).describe()

    def test_install_policies(self):
        assert make_protocol("pcp-da").install_policy is InstallPolicy.AT_COMMIT
        assert make_protocol("rw-pcp").install_policy is InstallPolicy.AT_WRITE
        assert make_protocol("ccp").install_policy is InstallPolicy.AT_WRITE
        assert make_protocol("pcp").install_policy is InstallPolicy.AT_WRITE
        assert make_protocol("2pl-hp").install_policy is InstallPolicy.AT_COMMIT

    def test_deadlock_declarations(self):
        assert not make_protocol("pcp-da").can_deadlock
        assert not make_protocol("rw-pcp").can_deadlock
        assert not make_protocol("ccp").can_deadlock
        assert not make_protocol("2pl-hp").can_deadlock
        assert not make_protocol("occ-bc").can_deadlock
        assert not make_protocol("rw-pcp-abort").can_deadlock
        assert make_protocol("pip-2pl").can_deadlock
        assert make_protocol("2pl").can_deadlock
        assert make_protocol("weak-pcp-da").can_deadlock

    def test_protocol_requires_bind_before_use(self):
        protocol = make_protocol("pcp-da")
        with pytest.raises(AssertionError):
            protocol.taskset
