"""Tests for the lock-manager runtime (repro.service.manager).

Everything here is in-process and socket-free (``make verify-service``
tier): sessions are driven through :class:`LockManager` directly or via
the in-process client, with explicit interleavings built from bare
``asyncio`` tasks — the suite must not depend on pytest-asyncio.
"""

import asyncio

import pytest

from repro.db.serializability import check_serializable
from repro.exceptions import (
    AdmissionError,
    DeadlineExceeded,
    ServiceError,
    SessionStateError,
    SpecificationError,
    TransactionAborted,
)
from repro.model.priorities import assign_by_order
from repro.model.spec import TaskSet, TransactionSpec, read, write
from repro.service import LockManager, ServiceConfig
from repro.service.manager import SessionState


def catalog_rw() -> TaskSet:
    """T1 (highest) reads x; T2 writes x; T3 reads x and writes y."""
    t1 = TransactionSpec("T1", (read("x", 1.0),))
    t2 = TransactionSpec("T2", (write("x", 1.0),))
    t3 = TransactionSpec("T3", (read("x", 1.0), write("y", 1.0)))
    return assign_by_order([t1, t2, t3])


def run(coro):
    """Run one async test body on a fresh event loop."""
    return asyncio.run(coro)


async def settle(steps: int = 5) -> None:
    """Let every ready callback on the loop run."""
    for _ in range(steps):
        await asyncio.sleep(0)


class TestSessionLifecycle:
    def test_begin_read_write_commit(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            session = await manager.begin("T3")
            assert session.state is SessionState.ACTIVE
            value = await manager.read(session, "x")
            assert value is None  # unwritten item: initial version
            await manager.write(session, "y", 41)
            summary = await manager.commit(session)
            assert summary["installed"] == ["y"]
            assert session.state is SessionState.COMMITTED
            assert manager.db.read_committed("y").value == 41
            check_serializable(manager.history)

        run(body())

    def test_instance_names_count_up(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            first = await manager.begin("T1")
            second = await manager.begin("T1")
            assert (first.name, second.name) == ("T1#0", "T1#1")

        run(body())

    def test_read_own_buffered_write(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            session = await manager.begin("T3")
            await manager.write(session, "y", "mine")
            assert await manager.read(session, "y") == "mine"
            # The buffered value is invisible to others until commit.
            assert manager.db.read_committed("y").value is None
            await manager.commit(session)

        run(body())

    def test_rereads_are_stable(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            session = await manager.begin("T1")
            first = await manager.read(session, "x")
            again = await manager.read(session, "x")
            assert first == again
            # One history event: the re-read observed the bound version.
            reads = [e for e in manager.history if e.job == "T1#0"]
            assert len(reads) == 1
            await manager.commit(session)

        run(body())

    def test_abort_discards_workspace(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            session = await manager.begin("T2")
            await manager.write(session, "x", "discarded")
            await manager.abort(session, "client")
            assert session.state is SessionState.ABORTED
            assert manager.db.read_committed("x").value is None

        run(body())

    def test_operations_after_commit_rejected(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            session = await manager.begin("T1")
            await manager.commit(session)
            with pytest.raises(SessionStateError):
                await manager.read(session, "x")
            with pytest.raises(SessionStateError):
                await manager.abort(session)

        run(body())

    def test_access_outside_declared_sets_rejected(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            session = await manager.begin("T1")
            with pytest.raises(SessionStateError):
                await manager.read(session, "y")  # T1 only declares x
            with pytest.raises(SessionStateError):
                await manager.write(session, "x", 1)  # read set only

        run(body())

    def test_unknown_transaction_and_session(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            with pytest.raises(SpecificationError):
                await manager.begin("T9")
            with pytest.raises(SessionStateError):
                manager.session(404)

        run(body())


class TestAdmissionAndShutdown:
    def test_max_sessions_backpressure(self):
        async def body():
            manager = LockManager(
                catalog_rw(), "pcp-da", ServiceConfig(max_sessions=2)
            )
            a = await manager.begin("T1")
            await manager.begin("T2")
            with pytest.raises(AdmissionError):
                await manager.begin("T3")
            await manager.commit(a)  # freeing a slot reopens admission
            await manager.begin("T3")
            assert manager.stats.sessions_rejected == 1

        run(body())

    def test_shutdown_aborts_live_sessions(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            session = await manager.begin("T2")
            await manager.write(session, "x", 1)
            await manager.shutdown()
            assert session.state is SessionState.ABORTED
            with pytest.raises(ServiceError):
                await manager.begin("T1")

        run(body())


class TestDeadlines:
    def test_expired_deadline_aborts_at_next_op(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            session = await manager.begin("T1", deadline_s=0.001)
            await asyncio.sleep(0.01)
            with pytest.raises(DeadlineExceeded):
                await manager.read(session, "x")
            assert session.state is SessionState.ABORTED
            assert manager.stats.deadline_aborts == 1

        run(body())

    def test_deadline_fires_while_parked_in_grant_queue(self):
        async def body():
            manager = LockManager(catalog_rw(), "2pl")
            writer = await manager.begin("T2")
            await manager.write(writer, "x", 1)
            reader = await manager.begin("T1", deadline_s=0.02)
            with pytest.raises(DeadlineExceeded):
                await manager.read(reader, "x")
            assert reader.state is SessionState.ABORTED
            assert not manager._waiters  # queue entry cleaned up
            await manager.commit(writer)

        run(body())


class TestGrantQueue:
    def test_conflicting_read_waits_for_writer_under_2pl(self):
        async def body():
            manager = LockManager(catalog_rw(), "2pl")
            writer = await manager.begin("T2")
            await manager.write(writer, "x", "w")
            reader = await manager.begin("T1")
            task = asyncio.ensure_future(manager.read(reader, "x"))
            await settle()
            assert reader.state is SessionState.WAITING
            assert not task.done()
            await manager.commit(writer)
            value = await task
            assert value == "w"  # observed the committed install
            await manager.commit(reader)
            check_serializable(manager.history)

        run(body())

    def test_queue_wakes_in_priority_order(self):
        async def body():
            t1 = TransactionSpec("T1", (read("x", 1.0),))
            t2 = TransactionSpec("T2", (read("x", 1.0),))
            t3 = TransactionSpec("T3", (write("x", 1.0),))
            manager = LockManager(assign_by_order([t1, t2, t3]), "2pl")
            holder = await manager.begin("T3")
            await manager.write(holder, "x", 1)
            low = await manager.begin("T2")
            high = await manager.begin("T1")
            order = []

            async def request(session, tag):
                await manager.read(session, "x")
                order.append(tag)

            low_task = asyncio.ensure_future(request(low, "low"))
            await settle()
            high_task = asyncio.ensure_future(request(high, "high"))
            await settle()
            await manager.commit(holder)
            await asyncio.gather(low_task, high_task)
            assert order == ["high", "low"]

        run(body())

    def test_one_inflight_operation_per_session(self):
        async def body():
            manager = LockManager(catalog_rw(), "2pl")
            writer = await manager.begin("T2")
            await manager.write(writer, "x", 1)
            reader = await manager.begin("T1")
            task = asyncio.ensure_future(manager.read(reader, "x"))
            await settle()
            with pytest.raises(SessionStateError):
                await manager.read(reader, "x")
            await manager.commit(writer)
            await task
            await manager.commit(reader)

        run(body())

    def test_cancelled_waiter_is_torn_down(self):
        async def body():
            manager = LockManager(catalog_rw(), "2pl")
            writer = await manager.begin("T2")
            await manager.write(writer, "x", 1)
            reader = await manager.begin("T1")
            task = asyncio.ensure_future(manager.read(reader, "x"))
            await settle()
            task.cancel()
            await settle()
            assert reader.state is SessionState.ABORTED
            assert not manager._waiters
            await manager.commit(writer)

        run(body())


class TestSerializationOrderEnforcement:
    """PCP-DA reads past write locks; the service must keep the adjusted
    order honest under true concurrency (module docstring of manager.py)."""

    def test_read_past_write_lock_is_granted(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            writer = await manager.begin("T2")
            await manager.write(writer, "x", "new")
            reader = await manager.begin("T1")
            value = await manager.read(reader, "x")  # LC3: no wait
            assert value is None  # committed version, not the buffer
            assert reader.state is SessionState.ACTIVE
            return manager, writer, reader

        async def full():
            manager, writer, reader = await body()
            await manager.commit(reader)
            await manager.commit(writer)
            check_serializable(manager.history)

        run(full())

    def test_writer_commit_gated_until_passing_reader_finishes(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            writer = await manager.begin("T2")
            await manager.write(writer, "x", "new")
            reader = await manager.begin("T1")
            await manager.read(reader, "x")  # reader ≺ writer now
            commit_task = asyncio.ensure_future(manager.commit(writer))
            await settle()
            assert not commit_task.done()  # parked at the commit gate
            assert writer.state is SessionState.WAITING
            await manager.commit(reader)
            await commit_task
            assert writer.state is SessionState.COMMITTED
            graph = check_serializable(manager.history)
            order = graph.topological_order()
            assert order.index("T1#0") < order.index("T2#0")

        run(body())

    def test_gate_opens_on_reader_abort_too(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            writer = await manager.begin("T2")
            await manager.write(writer, "x", "new")
            reader = await manager.begin("T1")
            await manager.read(reader, "x")
            commit_task = asyncio.ensure_future(manager.commit(writer))
            await settle()
            assert not commit_task.done()
            await manager.abort(reader, "client")
            await commit_task
            assert writer.state is SessionState.COMMITTED
            check_serializable(manager.history)

        run(body())

    def test_order_guard_blocks_read_of_predecessor_write_set(self):
        async def body():
            # T3 reads x past T1... need T3 ≺ W and W wants to read an
            # item in T3's write set.  Build a dedicated catalog:
            #   A writes x, reads y;  B reads x, writes y.
            a = TransactionSpec("A", (write("x", 1.0), read("y", 1.0)))
            b = TransactionSpec("B", (read("x", 1.0), write("y", 1.0)))
            manager = LockManager(assign_by_order([b, a]), "pcp-da")
            writer = await manager.begin("A")
            await manager.write(writer, "x", 1)
            reader = await manager.begin("B")
            await manager.read(reader, "x")      # B ≺ A recorded
            await manager.write(reader, "y", 2)  # B write-locks y
            # A reading y would observe state serialized *after* B begins
            # installing — the order guard must hold it back.
            read_task = asyncio.ensure_future(manager.read(writer, "y"))
            await settle()
            assert not read_task.done()
            waiter = manager._waiters[writer]
            assert waiter.reason.startswith("order guard")
            await manager.commit(reader)
            value = await read_task  # guard lifts once B finishes
            assert value == 2
            await manager.commit(writer)
            graph = check_serializable(manager.history)
            order = graph.topological_order()
            assert order.index("B#0") < order.index("A#0")

        run(body())

    def test_gate_cycle_resolved_by_victim_abort(self):
        async def body():
            # Crossed ≺ constraints cannot be built from LC3 alone in a
            # deterministic two-transaction script (each pass needs the
            # reader's priority above the writer's, and the footnote
            # closes the symmetric shapes), but concurrent timing races
            # can still produce them transitively.  Inject that state
            # directly and check the resolution machinery: both commits
            # gate on each other, the cycle is detected as service-level,
            # and the lowest-priority member is aborted.
            a = TransactionSpec("A", (write("x", 1.0), read("y", 1.0)))
            b = TransactionSpec("B", (read("x", 1.0), write("y", 1.0)))
            manager = LockManager(assign_by_order([a, b]), "pcp-da")
            sa = await manager.begin("A")
            sb = await manager.begin("B")
            await manager.write(sa, "x", 1)
            await manager.write(sb, "y", 2)
            manager._pred[sa.job] = {sb.job}
            manager._succ[sb.job] = {sa.job}
            manager._pred[sb.job] = {sa.job}
            manager._succ[sa.job] = {sb.job}
            commit_a = asyncio.ensure_future(manager.commit(sa))
            await settle()
            commit_b = asyncio.ensure_future(manager.commit(sb))
            results = await asyncio.gather(
                commit_a, commit_b, return_exceptions=True
            )
            # B has the lower base priority → B is the victim.
            assert isinstance(results[1], TransactionAborted)
            assert isinstance(results[0], dict)
            assert manager.stats.deadlocks == 1
            check_serializable(manager.history)

        run(body())

    def test_constraints_dropped_when_sessions_finish(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            writer = await manager.begin("T2")
            await manager.write(writer, "x", 1)
            reader = await manager.begin("T1")
            await manager.read(reader, "x")
            assert manager._pred and manager._succ
            await manager.commit(reader)
            await manager.commit(writer)
            assert not manager._pred and not manager._succ
            assert not manager._gate_futures

        run(body())


class TestIntrospection:
    def test_stats_document_gauges(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            session = await manager.begin("T1")
            doc = manager.stats_document()
            assert doc["live_sessions"] == 1
            assert doc["protocol"] == "pcp-da"
            assert doc["uptime_s"] >= 0
            await manager.commit(session)

        run(body())

    def test_history_events_replayable(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            session = await manager.begin("T3")
            await manager.read(session, "x")
            await manager.write(session, "y", 9)
            await manager.commit(session)
            rows = manager.history_events()
            assert [r["kind"] for r in rows] == ["read", "install", "commit"]
            assert all(r["job"] == "T3#0" for r in rows)

        run(body())

    def test_snapshot_result_feeds_the_oracles(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            session = await manager.begin("T3")
            await manager.read(session, "x")
            await manager.write(session, "y", 1)
            await manager.commit(session)
            result = manager.snapshot_result()
            assert result.protocol_name == "pcp-da"
            result.check_serializable()
            assert result.trace.commit_time("T3#0") is not None

        run(body())


class TestServiceConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(SpecificationError):
            ServiceConfig(deadlock_action="retry")
        with pytest.raises(SpecificationError):
            ServiceConfig(max_sessions=0)
        with pytest.raises(SpecificationError):
            ServiceConfig(default_deadline_s=0.0)
