"""Orphan-process regression: no shard host survives its parent. Ever.

These tests spawn a real parent interpreter that builds a 2-process
deployment, then kill the parent — including with SIGKILL, which no
atexit handler or signal handler in the parent can observe — and assert
every shard-host child exits on its own (the stdin-EOF parent-death
watchdog).  This is the property the whole hygiene stack exists for, so
it runs in tier-1 despite costing a few seconds of real subprocess
startup.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.model.priorities import assign_by_order
from repro.model.spec import TaskSet, TransactionSpec, read, write
from repro.workloads.io import dump_taskset

SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")

#: Parent script: stand up a 2-process deployment, report the child
#: pids on stdout, then idle until killed.
PARENT = """
import asyncio, json, sys
from repro.workloads.io import load_taskset
from repro.service.sharding.procs.supervisor import start_proc_deployment

async def main():
    catalog = load_taskset(sys.argv[1])
    supervisor, coordinator = await start_proc_deployment(
        catalog, "pcp-da", shards=2
    )
    print(json.dumps({
        "pids": [h.process.pid for h in supervisor.handles]
    }), flush=True)
    mode = sys.argv[2]
    if mode == "idle":
        await asyncio.sleep(300)
    elif mode == "clean":
        await coordinator.shutdown()
        await supervisor.stop()
    elif mode == "crash":
        raise RuntimeError("unhandled: exercises the atexit backstop")

asyncio.run(main())
"""


def catalog_file(tmp_path) -> str:
    specs = [
        TransactionSpec("R", (read("x", 1.0),), offset=0.0),
        TransactionSpec("W", (write("x", 1.0), write("y", 1.0)), offset=0.0),
    ]
    path = str(tmp_path / "catalog.json")
    dump_taskset(assign_by_order(specs), path)
    return path


def spawn_parent(tmp_path, mode: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.Popen(
        [sys.executable, "-c", PARENT, catalog_file(tmp_path), mode],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env,
    )


def read_child_pids(parent: subprocess.Popen) -> list:
    line = parent.stdout.readline()
    info = json.loads(line.decode("utf-8"))
    pids = info["pids"]
    assert len(pids) == 2
    for pid in pids:
        os.kill(pid, 0)  # all children alive at handoff
    return pids


def assert_all_exit(pids, timeout_s: float = 15.0) -> None:
    deadline = time.monotonic() + timeout_s
    live = set(pids)
    while live and time.monotonic() < deadline:
        for pid in list(live):
            try:
                os.kill(pid, 0)
            except (ProcessLookupError, PermissionError):
                live.discard(pid)
        if live:
            time.sleep(0.1)
    if live:  # leave no orphans behind even when failing the test
        for pid in live:
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
        pytest.fail(f"shard hosts survived their parent: {sorted(live)}")


class TestOrphanHygiene:
    def test_sigkilled_parent_leaves_no_children(self, tmp_path):
        """SIGKILL skips every handler; only the stdin pipe saves us."""
        parent = spawn_parent(tmp_path, "idle")
        try:
            pids = read_child_pids(parent)
            parent.kill()
            parent.wait(timeout=10)
            assert_all_exit(pids)
        finally:
            if parent.poll() is None:
                parent.kill()
            parent.wait(timeout=10)

    def test_sigterm_parent_leaves_no_children(self, tmp_path):
        """Default SIGTERM disposition skips atexit; stdin EOF covers it."""
        parent = spawn_parent(tmp_path, "idle")
        try:
            pids = read_child_pids(parent)
            parent.send_signal(signal.SIGTERM)
            parent.wait(timeout=10)
            assert_all_exit(pids)
        finally:
            if parent.poll() is None:
                parent.kill()
            parent.wait(timeout=10)

    def test_unhandled_exception_leaves_no_children(self, tmp_path):
        """A crash that skips stop() still reaps via atexit."""
        parent = spawn_parent(tmp_path, "crash")
        try:
            pids = read_child_pids(parent)
            assert parent.wait(timeout=30) != 0
            assert_all_exit(pids)
        finally:
            if parent.poll() is None:
                parent.kill()
            parent.wait(timeout=10)

    def test_clean_stop_exits_zero_and_reaps(self, tmp_path):
        parent = spawn_parent(tmp_path, "clean")
        try:
            pids = read_child_pids(parent)
            assert parent.wait(timeout=30) == 0
            assert_all_exit(pids, timeout_s=5.0)
        finally:
            if parent.poll() is None:
                parent.kill()
            parent.wait(timeout=10)
