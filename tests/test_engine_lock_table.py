"""Unit tests for the lock table (repro.engine.lock_table)."""

import pytest

from repro.engine.job import Job
from repro.engine.lock_table import LockTable
from repro.exceptions import ProtocolError
from repro.model.spec import LockMode, TransactionSpec, read


def _job(name, priority=1, arrival=0.0):
    spec = TransactionSpec(name, (read("x"),), priority=priority)
    return Job(spec, 0, arrival)


class TestLockTable:
    def test_grant_and_holds(self):
        table = LockTable()
        job = _job("A")
        table.grant(job, "x", LockMode.READ)
        assert table.holds(job, "x", LockMode.READ)
        assert not table.holds(job, "x", LockMode.WRITE)
        assert table.holds_any(job, "x")

    def test_double_grant_rejected(self):
        table = LockTable()
        job = _job("A")
        table.grant(job, "x", LockMode.READ)
        with pytest.raises(ProtocolError):
            table.grant(job, "x", LockMode.READ)

    def test_read_and_write_by_same_job(self):
        """Lock upgrade: both modes held simultaneously."""
        table = LockTable()
        job = _job("A")
        table.grant(job, "x", LockMode.READ)
        table.grant(job, "x", LockMode.WRITE)
        assert table.items_held_by(job) == {
            "x": frozenset({LockMode.READ, LockMode.WRITE})
        }

    def test_concurrent_write_locks_allowed(self):
        """PCP-DA's Case 3: the table must accept co-existing writers."""
        table = LockTable()
        a, b = _job("A"), _job("B", priority=2)
        table.grant(a, "x", LockMode.WRITE)
        table.grant(b, "x", LockMode.WRITE)
        assert table.writers_of("x") == frozenset({a, b})

    def test_reader_alongside_writer(self):
        """PCP-DA's Case 1: a reader co-existing with a writer."""
        table = LockTable()
        writer, reader = _job("W"), _job("R", priority=2)
        table.grant(writer, "x", LockMode.WRITE)
        table.grant(reader, "x", LockMode.READ)
        assert table.readers_of("x") == frozenset({reader})
        assert table.writers_of("x") == frozenset({writer})

    def test_release_specific_lock(self):
        table = LockTable()
        job = _job("A")
        table.grant(job, "x", LockMode.READ)
        table.release(job, "x", LockMode.READ)
        assert not table.holds_any(job, "x")
        assert table.holders_of("x") == frozenset()

    def test_release_unheld_rejected(self):
        table = LockTable()
        with pytest.raises(ProtocolError):
            table.release(_job("A"), "x", LockMode.READ)

    def test_release_all(self):
        table = LockTable()
        job = _job("A")
        table.grant(job, "x", LockMode.READ)
        table.grant(job, "y", LockMode.WRITE)
        released = table.release_all(job)
        assert set(released) == {("x", LockMode.READ), ("y", LockMode.WRITE)}
        assert table.items_held_by(job) == {}

    def test_release_all_idempotent_for_unknown_job(self):
        assert LockTable().release_all(_job("A")) == ()

    def test_read_locked_items_excludes_job(self):
        table = LockTable()
        a, b = _job("A"), _job("B", priority=2)
        table.grant(a, "x", LockMode.READ)
        table.grant(b, "y", LockMode.READ)
        assert table.read_locked_items() == ("x", "y")
        assert table.read_locked_items(exclude=a) == ("y",)

    def test_locked_items_any_mode(self):
        table = LockTable()
        a = _job("A")
        table.grant(a, "x", LockMode.WRITE)
        assert table.locked_items() == ("x",)
        assert table.locked_items(exclude=a) == ()
        assert table.read_locked_items() == ()
