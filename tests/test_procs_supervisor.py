"""ShardSupervisor tests with an injected spawner — no subprocesses.

Socket-free (``make verify-procs`` tier): a fake spawner hands the
supervisor process-like and proxy-like objects, so the lifecycle logic —
start, graceful stop with SIGTERM-then-SIGKILL escalation, crash
detection, fail-fast vs restart, the atexit backstop's pid bookkeeping —
is all exercised deterministically.  The one test that needs real
processes (nothing survives a SIGKILLed parent) lives in
``test_procs_orphans.py``.
"""

import asyncio

import pytest

from repro.exceptions import ServiceError
from repro.model.priorities import assign_by_order
from repro.model.spec import TaskSet, TransactionSpec, read, write
from repro.service.sharding.procs.supervisor import (
    ShardSupervisor,
    start_proc_deployment,
)


def catalog_rw() -> TaskSet:
    specs = [
        TransactionSpec("R", (read("x", 1.0),), offset=0.0),
        TransactionSpec("W", (write("x", 1.0),), offset=0.0),
    ]
    return assign_by_order(specs)


def run(coro):
    return asyncio.run(coro)


async def settle(steps: int = 10) -> None:
    for _ in range(steps):
        await asyncio.sleep(0)


class FakeStdin:
    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


class FakeProcess:
    """Process-like: exit is an event the test (or terminate) fires."""

    _pids = iter(range(90001, 99999))

    def __init__(self):
        self.pid = next(FakeProcess._pids)
        self.returncode = None
        self.stdin = FakeStdin()
        self.terminated = False
        self.killed = False
        self._exited = asyncio.Event()

    def exit(self, code: int) -> None:
        self.returncode = code
        self._exited.set()

    async def wait(self) -> int:
        await self._exited.wait()
        return self.returncode

    def terminate(self) -> None:
        self.terminated = True
        self.exit(-15)

    def kill(self) -> None:
        self.killed = True
        self.exit(-9)


class FakeProxy:
    def __init__(self, index: int):
        self.index = index
        self.shut_down = False
        self._t0 = 0.0

    async def shutdown(self) -> None:
        self.shut_down = True


class FakeCoordinator:
    """Records the crash-handling calls the supervisor makes."""

    def __init__(self):
        self.lost = []
        self.replaced = []

    def on_shard_lost(self, shard_id, reason):
        self.lost.append((shard_id, reason))

    def replace_shard(self, shard_id, shard):
        self.replaced.append((shard_id, shard))


def make_supervisor(**kwargs):
    spawned = []

    async def spawn(index):
        process = FakeProcess()
        proxy = FakeProxy(index)
        spawned.append((index, process, proxy))
        return process, proxy, 9000 + index

    kwargs.setdefault("shards", 2)
    supervisor = ShardSupervisor(catalog_rw(), "pcp-da", spawn=spawn,
                                 **kwargs)
    return supervisor, spawned


class TestLifecycle:
    def test_start_spawns_every_shard_in_order(self):
        async def body():
            supervisor, spawned = make_supervisor(shards=3)
            await supervisor.start()
            assert [index for index, _, _ in spawned] == [0, 1, 2]
            assert len(supervisor.proxies) == 3
            assert supervisor.handles[2].port == 9002
            await supervisor.stop()

        run(body())

    def test_start_twice_refused(self):
        async def body():
            supervisor, _ = make_supervisor()
            await supervisor.start()
            with pytest.raises(ServiceError):
                await supervisor.start()
            await supervisor.stop()

        run(body())

    def test_stop_closes_stdin_terminates_and_reaps(self):
        async def body():
            supervisor, spawned = make_supervisor()
            await supervisor.start()
            await supervisor.stop()
            for _, process, proxy in spawned:
                assert proxy.shut_down
                assert process.stdin.closed
                assert process.terminated
                assert process.returncode is not None
            # reaped children leave nothing for the atexit backstop
            supervisor._atexit_reap()

        run(body())

    def test_stop_is_idempotent(self):
        async def body():
            supervisor, _ = make_supervisor()
            await supervisor.start()
            await supervisor.stop()
            await supervisor.stop()

        run(body())

    def test_failed_spawn_tears_down_earlier_shards(self):
        spawned = []

        async def spawn(index):
            if index == 1:
                raise OSError("no more processes")
            process = FakeProcess()
            spawned.append(process)
            return process, FakeProxy(index), 9000 + index

        async def body():
            supervisor = ShardSupervisor(catalog_rw(), "pcp-da",
                                         shards=2, spawn=spawn)
            with pytest.raises(OSError):
                await supervisor.start()
            assert spawned[0].returncode is not None

        run(body())


class TestCrashHandling:
    def test_unexpected_death_fails_fast_by_default(self):
        async def body():
            supervisor, spawned = make_supervisor()
            coordinator = FakeCoordinator()
            supervisor.attach(coordinator)
            await supervisor.start()
            spawned[1][1].exit(-9)
            await asyncio.wait_for(supervisor.crashed.wait(), 5)
            assert "code -9" in supervisor.failed
            assert coordinator.lost == [(1, supervisor.failed)]
            assert spawned[1][2].shut_down
            await supervisor.stop()

        run(body())

    def test_restart_policy_relaunches_and_swaps_the_proxy(self):
        async def body():
            supervisor, spawned = make_supervisor(on_crash="restart")
            coordinator = FakeCoordinator()
            supervisor.attach(coordinator)
            await supervisor.start()
            dead = spawned[0]
            dead[1].exit(1)
            await asyncio.wait_for(supervisor.crashed.wait(), 5)
            assert supervisor.failed is None
            assert len(spawned) == 3  # 2 initial + 1 replacement
            replacement = spawned[2]
            assert replacement[0] == 0  # respawned at the dead index
            assert supervisor.handles[0].process is replacement[1]
            assert coordinator.lost[0][0] == 0
            assert coordinator.replaced == [(0, replacement[2])]
            assert replacement[2]._t0 == supervisor.t0
            await supervisor.stop()

        run(body())

    def test_restart_failure_downgrades_to_failed(self):
        calls = {"n": 0}

        async def spawn(index):
            calls["n"] += 1
            if calls["n"] > 2:
                raise OSError("fork bomb guard")
            return FakeProcess(), FakeProxy(index), 9000 + index

        async def body():
            supervisor = ShardSupervisor(catalog_rw(), "pcp-da", shards=2,
                                         on_crash="restart", spawn=spawn)
            await supervisor.start()
            supervisor.handles[0].process.exit(1)
            await asyncio.wait_for(supervisor.crashed.wait(), 5)
            assert "restart failed" in supervisor.failed
            await supervisor.stop()

        run(body())

    def test_invalid_on_crash_rejected(self):
        with pytest.raises(ValueError):
            ShardSupervisor(catalog_rw(), on_crash="shrug")


class TestDeployment:
    def test_start_proc_deployment_wires_the_clock_and_crash_path(self):
        async def body():
            spawn_proxies = []

            async def spawn(index):
                proxy = FakeProxy(index)
                # the coordinator ctor probes the injected shard surface
                proxy.churn_listeners = []
                proxy.decision_listeners = []
                proxy.is_remote = True
                spawn_proxies.append(proxy)
                return FakeProcess(), proxy, 9000 + index

            supervisor, coordinator = await start_proc_deployment(
                catalog_rw(), "pcp-da", shards=2, spawn=spawn,
            )
            assert coordinator._t0 == supervisor.t0
            assert all(p._t0 == supervisor.t0 for p in spawn_proxies)
            assert supervisor._coordinator is coordinator
            assert coordinator._remote is True
            assert [s for s in coordinator.shards] == spawn_proxies
            await supervisor.stop()

        run(body())
