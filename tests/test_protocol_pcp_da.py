"""Behavioural tests of PCP-DA beyond the paper's worked examples."""

import pytest

from repro.core.pcp_da import PCPDA
from repro.engine.simulator import SimConfig, Simulator
from repro.model.priorities import assign_by_order
from repro.model.spec import DUMMY_PRIORITY, TransactionSpec, compute, read, write
from repro.verify import verify_pcp_da_run
from tests.conftest import run


def _ts(*specs):
    return assign_by_order(list(specs))


class TestWritePreemptability:
    def test_reader_preempts_writer_of_same_item(self):
        """Case 1: Write_L(x) then Read_H(x) — H preempts, reads the
        committed value, commits first; serialization order H -> L."""
        ts = _ts(
            TransactionSpec("H", (read("x", 1.0),), offset=1.0),
            TransactionSpec("L", (write("x", 1.0), compute(2.0)), offset=0.0),
        )
        result = run(ts, "pcp-da")
        assert result.job("H#0").total_blocking_time() == 0.0
        assert result.job("H#0").finish_time == 2.0
        assert result.job("L#0").finish_time == 4.0
        from repro.db.serializability import serialization_order
        assert serialization_order(result.history) == ("H#0", "L#0")

    def test_two_concurrent_writers_same_item(self):
        """Case 3: blind writes never conflict; commit order decides."""
        ts = _ts(
            TransactionSpec("H", (write("x", 1.0),), offset=1.0),
            TransactionSpec("L", (write("x", 1.0), compute(2.0)), offset=0.0),
        )
        result = run(ts, "pcp-da")
        assert all(j.total_blocking_time() == 0.0 for j in result.jobs)
        # H commits at 2, L at 4: L's value is final (installed last).
        assert result.database.read_committed("x").writer == "L#0"
        verify_pcp_da_run(result)

    def test_reader_blocks_writer(self):
        """Case 2: Read_L(x) then Write_H(x) — the one unavoidable block."""
        ts = _ts(
            TransactionSpec("H", (write("x", 1.0),), offset=1.0),
            TransactionSpec("L", (read("x", 2.0), compute(1.0)), offset=0.0),
        )
        result = run(ts, "pcp-da")
        h = result.job("H#0")
        assert h.total_blocking_time() == 2.0  # waits for L's commit at 3
        denial = result.trace.denials_for("H#0")[0]
        assert "conflict blocking" in denial.rule
        verify_pcp_da_run(result)

    def test_footnote_denial_prevents_restart(self):
        """Reading a write-locked item is refused when the writer has read
        something the reader will write (Table 1's * condition) — the
        situation that would otherwise force a restart."""
        # L: reads a, then writes x (holds write lock on x while H runs).
        # H: reads x, then writes a.  DataRead(L) ∩ WriteSet(H) = {a}.
        ts = _ts(
            TransactionSpec("H", (read("x", 1.0), write("a", 1.0)), offset=2.0),
            TransactionSpec(
                "L", (read("a", 1.0), write("x", 1.0), compute(2.0)), offset=0.0
            ),
        )
        result = run(ts, "pcp-da")
        h = result.job("H#0")
        denial = result.trace.denials_for("H#0")[0]
        assert denial.item == "x"
        assert "Table 1" in denial.rule
        assert h.total_blocking_time() == 2.0  # until L commits at 4
        assert result.aborted_restarts == 0
        verify_pcp_da_run(result)


class TestCeilingBehaviour:
    def test_sysceil_tracks_read_locks_only(self):
        ts = _ts(
            TransactionSpec("H", (write("y", 1.0),), offset=9.0),
            TransactionSpec("L", (read("y", 2.0), write("z", 2.0)), offset=0.0),
        )
        protocol = PCPDA()
        sim = Simulator(ts, protocol)
        result = sim.run()
        trace = result.trace.sysceil_samples
        # While L read-locks y (t=0..4): ceiling = Wceil(y) = P_H = 2.
        levels = dict(trace)
        assert levels.get(0.0) == 2
        # After L commits everything drops to dummy.
        from repro.trace.sysceil import SysceilTrace
        assert SysceilTrace.from_result(result).level_at(5.0) == DUMMY_PRIORITY

    def test_equal_priority_instances_swap_safely(self):
        """Two instances of the same transaction never deadlock or violate
        single-blocking (FIFO within a priority level)."""
        ts = _ts(
            TransactionSpec(
                "T", (read("a", 1.0), write("b", 1.0)), offset=0.0, period=3.0
            ),
        )
        result = run(ts, "pcp-da", SimConfig(horizon=9.0))
        assert len(result.jobs_of("T")) == 3
        verify_pcp_da_run(result)


class TestAblations:
    def test_disabling_lc4_blocks_example4_t3(self, ex4):
        """Without LC4, T3's read of z at t=1 is denied (the paper's grant
        used LC4), re-introducing a ceiling blocking."""
        result = run(ex4, "pcp-da", enable_lc4=False)
        t3 = result.job("T3#0")
        assert t3.total_blocking_time() > 0.0
        verify_pcp_da_run(result)  # safety properties survive the ablation

    def test_disabling_lc3_only_changes_nothing_in_example4(self, ex4):
        """Example 4 never fires LC3, so the LC3 ablation leaves the
        timeline intact."""
        base = run(ex4, "pcp-da")
        ablated = run(ex4, "pcp-da", enable_lc3=False)
        assert [
            (j.name, j.finish_time) for j in base.jobs
        ] == [(j.name, j.finish_time) for j in ablated.jobs]

    def test_lc3_grant_scenario(self):
        """A mid-priority reader admitted by LC3 (P > HPW(item), item not
        in WriteSet(T*)) even though Sysceil blocks LC2."""
        # L (lowest) read-locks a, whose Wceil = P_H (H writes a): Sysceil
        # = P_H for everyone.  M then reads b, written only by L:
        # HPW(b) = P_L < P_M and b not in WriteSet... T* = L writes b!
        # So use c written by nobody relevant: HPW(c) = dummy.
        ts = _ts(
            TransactionSpec("H", (write("a", 1.0),), offset=9.0),
            TransactionSpec("M", (read("c", 1.0),), offset=1.0),
            TransactionSpec("L", (read("a", 2.0), compute(1.0)), offset=0.0),
        )
        result = run(ts, "pcp-da")
        grant = result.trace.grants_for("M#0")[0]
        assert grant.rule == "LC3"
        assert result.job("M#0").total_blocking_time() == 0.0
        # And with LC3 disabled the same request ceiling-blocks.
        ablated = run(ts, "pcp-da", enable_lc3=False)
        assert ablated.job("M#0").total_blocking_time() > 0.0


class TestNoRestartGuarantee:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_workloads_never_restart(self, seed):
        from repro.workloads.generator import WorkloadConfig, generate_taskset

        ts = generate_taskset(
            WorkloadConfig(
                n_transactions=6, n_items=5, write_probability=0.5,
                hot_access_probability=0.9, seed=seed,
            )
        )
        result = Simulator(ts, PCPDA(), SimConfig(horizon=600.0)).run()
        verify_pcp_da_run(result)
