"""Decision-level parity battery (repro.verify.parity).

One seeded workload, four executions — simulator (kernel and object
paths), in-process service, sharded coordinator — must agree
decision-for-decision under sequential replay.  The acceptance battery
(20 seeds × the full ceiling family) runs here in tier-1; the harness's
plumbing (normalisation, sequential task sets, divergence reporting) is
pinned by the smaller cases.
"""

import pytest

from repro.trace.recorder import LockEvent, LockOutcome
from repro.verify.parity import (
    ParityError,
    _normalise,
    check_decision_parity,
    coordinator_decisions,
    parity_battery,
    sequential_taskset,
    service_decisions,
    simulator_decisions,
)
from repro.verify.stress import CEILING_FAMILY, StressSpec, iter_arrivals

#: Non-ceiling protocols the harness should also hold for — parity under
#: sequential replay is a property of *any* correctly layered protocol.
OTHER_PROTOCOLS = ("pip-2pl", "2pl-hp", "2pl", "occ-bc")


def _event(job, item="x1", mode="write", outcome=LockOutcome.GRANTED,
           rule="LC1"):
    from repro.model.spec import LockMode

    return LockEvent(
        time=0.0, job=job, item=item,
        mode=LockMode.WRITE if mode == "write" else LockMode.READ,
        outcome=outcome, rule=rule, blockers=(),
    )


class TestNormalise:
    def test_simulator_naming(self):
        # simulator jobs: "<type>@<instance>#<release>"
        assert _normalise(_event("S3@7#0"))[:2] == ("S3", 7)

    def test_service_naming(self):
        # service jobs: "<type>#<instance>"
        assert _normalise(_event("S3#7"))[:2] == ("S3", 7)

    def test_same_record_across_schemes(self):
        assert _normalise(_event("S12@4#0")) == _normalise(_event("S12#4"))


class TestSequentialTaskset:
    def test_offsets_strictly_spaced(self):
        spec = StressSpec(seed=1, transactions=10)
        taskset = sequential_taskset(spec)
        offsets = sorted(s.offset for s in taskset.specs)
        gaps = [b - a for a, b in zip(offsets, offsets[1:])]
        assert all(g > 1.0 for g in gaps)

    def test_one_spec_per_arrival(self):
        spec = StressSpec(seed=1, transactions=10)
        taskset = sequential_taskset(spec)
        arrivals = list(iter_arrivals(spec))
        assert len(taskset.specs) == len(arrivals)
        # instance numbering is the per-type occurrence index
        names = {s.name for s in taskset.specs}
        per_type = {}
        for arrival in arrivals:
            k = per_type.get(arrival.name, 0)
            per_type[arrival.name] = k + 1
            assert f"{arrival.name}@{k}" in names


class TestDecisionSequences:
    def test_simulator_kernel_object_agree(self):
        spec = StressSpec(seed=2, transactions=12)
        a = simulator_decisions(spec, "pcp-da", kernel=True)
        b = simulator_decisions(spec, "pcp-da", kernel=False)
        assert a and a == b

    def test_service_matches_simulator(self):
        spec = StressSpec(seed=2, transactions=12)
        assert (
            service_decisions(spec, "pcp-da")
            == simulator_decisions(spec, "pcp-da", kernel=True)
        )

    def test_coordinator_shard_counts_agree(self):
        spec = StressSpec(seed=2, transactions=12)
        one = coordinator_decisions(spec, "pcp-da", shards=1)
        three = coordinator_decisions(spec, "pcp-da", shards=3)
        assert one and one == three


class TestCheckDecisionParity:
    def test_reports_executions_and_decisions(self):
        spec = StressSpec(seed=3, transactions=8)
        report = check_decision_parity(spec, "rw-pcp")
        assert len(report.executions) == 4
        assert report.decisions > 0

    def test_divergence_raises_with_location(self):
        spec = StressSpec(seed=3, transactions=8)
        good = simulator_decisions(spec, "pcp-da", kernel=True)
        tampered = list(good)
        tampered[2] = tampered[2][:5] + ("LC-bogus",)
        with pytest.raises(ParityError) as excinfo:
            check_decision_parity(
                spec, "pcp-da",
                extra_executions={"tampered": lambda: tampered},
            )
        message = str(excinfo.value)
        assert "tampered" in message and "decision 2" in message

    def test_length_mismatch_raises(self):
        spec = StressSpec(seed=3, transactions=8)
        good = simulator_decisions(spec, "pcp-da", kernel=True)
        with pytest.raises(ParityError) as excinfo:
            check_decision_parity(
                spec, "pcp-da",
                extra_executions={"short": lambda: good[:-1]},
            )
        assert "lengths differ" in str(excinfo.value)


@pytest.mark.stress
class TestAcceptanceBattery:
    """The ISSUE's parity acceptance criterion, enforced in tier-1."""

    def test_twenty_seeds_ceiling_family(self):
        reports = parity_battery(
            seeds=range(20), protocols=CEILING_FAMILY, transactions=25,
        )
        assert len(reports) == 20 * len(CEILING_FAMILY)
        assert all(len(r.executions) == 4 for r in reports)
        assert all(r.decisions > 0 for r in reports)

    def test_non_ceiling_protocols_also_agree(self):
        parity_battery(
            seeds=range(3), protocols=OTHER_PROTOCOLS, transactions=15,
        )

    def test_multi_shard_coordinator_in_the_loop(self):
        parity_battery(
            seeds=range(3), protocols=("pcp-da", "rw-pcp"),
            transactions=15, coordinator_shards=3,
        )
