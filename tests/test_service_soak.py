"""TCP + loadgen soak battery (``service_soak`` marker, not tier-1).

The acceptance scenario from the service design: a real ``LockServer``
on a loopback socket, 32 concurrent loadgen clients each on their own
TCP connection, PCP-DA deciding every lock — and the run must finish
deadlock-free with its client-side serializability verdict ``OK``.

Run with ``make verify-service SOAK=1`` (or
``pytest -m service_soak --override-ini 'addopts=-q'``).
"""

import asyncio

import pytest

from repro.service import LockManager, ServiceConfig
from repro.service.client import connect_tcp
from repro.service.loadgen import LoadgenConfig, run_loadgen
from repro.service.server import LockServer
from repro.workloads.generator import WorkloadConfig, generate_taskset

pytestmark = pytest.mark.service_soak


def serve_and_load(protocol, workload, loadcfg, *, service=None):
    """Start a TCP server, run the loadgen against it, return the report."""

    async def body():
        catalog = generate_taskset(workload)
        manager = LockManager(catalog, protocol, service or ServiceConfig())
        server = LockServer(manager, port=0)
        await server.start()
        try:
            async def connect():
                return await connect_tcp("127.0.0.1", server.port)

            return await run_loadgen(loadcfg, connect)
        finally:
            await server.close()

    return asyncio.run(body())


class TestAcceptanceSoak:
    def test_pcp_da_32_clients_serializable(self):
        report = serve_and_load(
            "pcp-da",
            WorkloadConfig(
                n_transactions=6, n_items=8, write_probability=0.5, seed=11
            ),
            LoadgenConfig(clients=32, transactions_per_client=8, seed=5),
        )
        assert report.serializable, report.violation
        assert report.completed == 32 * 8
        assert report.stats is not None
        assert report.stats.deadlocks == 0
        assert report.transport_errors == 0
        # The report renders the full observability surface.
        text = report.render()
        assert "serializability: OK" in text
        assert "blocking by priority band" in text

    def test_open_loop_overload_probe(self):
        report = serve_and_load(
            "pcp-da",
            WorkloadConfig(
                n_transactions=8, n_items=4, write_probability=0.7, seed=3
            ),
            LoadgenConfig(
                clients=24, transactions_per_client=10, seed=7,
                arrival_rate_hz=50.0,
            ),
        )
        assert report.serializable, report.violation
        assert report.completed == 24 * 10

    def test_chaos_with_deadlines_stays_serializable(self):
        report = serve_and_load(
            "pcp-da",
            WorkloadConfig(
                n_transactions=6, n_items=6, write_probability=0.6, seed=29
            ),
            LoadgenConfig(
                clients=16, transactions_per_client=8, seed=13,
                abort_probability=0.15, deadline_s=5.0,
            ),
        )
        assert report.serializable, report.violation
        assert report.client_aborts > 0

    @pytest.mark.parametrize("protocol", ["2pl", "2pl-hp", "occ-bc"])
    def test_baseline_protocols_serializable_over_tcp(self, protocol):
        report = serve_and_load(
            protocol,
            WorkloadConfig(
                n_transactions=5, n_items=6, write_probability=0.5, seed=11
            ),
            LoadgenConfig(clients=12, transactions_per_client=6, seed=9),
        )
        assert report.serializable, report.violation
