"""Cross-validation: observed blocking never exceeds the analytic B_i.

Section 9's whole point is that `B_i` *bounds* the blocking any instance
of `T_i` can suffer.  These tests close the loop between the two halves of
the library: for each ceiling protocol, every job's observed lock-blocking
time (and its strict priority-inversion time) in simulation must be at
most the corresponding analytical term computed from the static task set.

This holds per job because of single-blocking: one lower-priority blocker,
holding to its commit, for at most `B_i` time units.
"""

import pytest

from repro.analysis.blocking import blocking_terms
from repro.engine.simulator import SimConfig, Simulator
from repro.protocols import make_protocol
from repro.trace.metrics import priority_inversion_time
from repro.workloads.examples import example4_taskset
from repro.workloads.generator import WorkloadConfig, generate_taskset

#: protocol -> analysis key.
ANALYSES = {"pcp-da": "pcp-da", "rw-pcp": "rw-pcp", "pcp": "pcp"}

_EPS = 1e-6


def _check_run(result, terms):
    for job in result.jobs:
        bound = terms[job.spec.name]
        observed = job.total_blocking_time()
        assert observed <= bound + _EPS, (
            f"{result.protocol_name}: {job.name} blocked {observed} "
            f"> analytic B_i {bound}"
        )
        inversion = priority_inversion_time(result, job.name)
        assert inversion <= bound + _EPS, (
            f"{result.protocol_name}: {job.name} inversion {inversion} "
            f"> analytic B_i {bound}"
        )


class TestBiBoundsSimulation:
    @pytest.mark.parametrize("protocol", sorted(ANALYSES))
    @pytest.mark.parametrize("seed", range(10))
    def test_random_periodic_workloads(self, protocol, seed):
        taskset = generate_taskset(
            WorkloadConfig(
                n_transactions=6, n_items=5, write_probability=0.5,
                hot_access_probability=0.9, target_utilization=0.7,
                seed=seed,
            )
        )
        terms = blocking_terms(taskset, ANALYSES[protocol])
        result = Simulator(
            taskset, make_protocol(protocol), SimConfig()
        ).run()
        _check_run(result, terms)

    @pytest.mark.parametrize("protocol", sorted(ANALYSES))
    def test_example4(self, protocol, ex4):
        terms = blocking_terms(ex4, ANALYSES[protocol])
        result = Simulator(ex4, make_protocol(protocol), SimConfig()).run()
        _check_run(result, terms)

    @pytest.mark.parametrize("seed", range(10))
    def test_rmw_upgrade_workloads_under_pcp_da(self, seed):
        """Lock upgrades are the most delicate path; the bound must hold
        there too."""
        taskset = generate_taskset(
            WorkloadConfig(
                n_transactions=5, n_items=4, write_probability=0.6,
                rmw_probability=0.8, hot_access_probability=0.9,
                target_utilization=0.6, seed=seed,
            )
        )
        terms = blocking_terms(taskset, "pcp-da")
        result = Simulator(
            taskset, make_protocol("pcp-da"), SimConfig()
        ).run()
        _check_run(result, terms)


class TestTightness:
    def test_bound_is_attained_somewhere(self):
        """The bound is not vacuous: Figure 3's T1 attains B_1 under
        RW-PCP exactly (blocked for T2's entire remaining execution ...
        the analysis charges the whole C_2 = 5; the observed 4 units is
        C_2 minus the unit T2 had already executed)."""
        from repro.workloads.examples import example3_taskset

        ts = example3_taskset()
        from repro.model.spec import TaskSet, TransactionSpec

        periodic = TaskSet([
            ts["T1"],
            TransactionSpec(
                name="T2", operations=ts["T2"].operations,
                priority=ts["T2"].priority, period=20.0,
            ),
        ])
        terms = blocking_terms(periodic, "rw-pcp")
        result = Simulator(
            periodic, make_protocol("rw-pcp"), SimConfig(horizon=20.0)
        ).run()
        t1_worst = max(
            j.total_blocking_time() for j in result.jobs_of("T1")
        )
        assert terms["T1"] == 5.0
        assert t1_worst == pytest.approx(4.0)  # within one op of the bound
        assert t1_worst >= 0.75 * terms["T1"]
