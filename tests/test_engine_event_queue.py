"""Unit tests for the event calendar (repro.engine.event_queue)."""

import pytest

from repro.engine.event_queue import EventQueue
from repro.exceptions import SimulationError


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(3.0, "arrival", "c")
        q.push(1.0, "arrival", "a")
        q.push(2.0, "arrival", "b")
        assert [q.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_same_time_same_kind_pops_in_insertion_order(self):
        q = EventQueue()
        q.push(1.0, "arrival", "first")
        q.push(1.0, "arrival", "second")
        assert q.pop().payload == "first"
        assert q.pop().payload == "second"

    def test_op_done_precedes_arrival_at_same_time(self):
        q = EventQueue()
        q.push(5.0, "arrival", "arr")     # inserted first...
        q.push(5.0, "op_done", "done")    # ...but completions fire first
        assert q.pop().kind == "op_done"
        assert q.pop().kind == "arrival"

    def test_clock_advances_on_pop(self):
        q = EventQueue()
        q.push(4.0, "arrival", None)
        assert q.now == 0.0
        q.pop()
        assert q.now == 4.0

    def test_push_in_past_rejected(self):
        q = EventQueue()
        q.push(5.0, "arrival", None)
        q.pop()
        with pytest.raises(SimulationError):
            q.push(4.0, "arrival", None)

    def test_push_at_now_allowed(self):
        q = EventQueue()
        q.push(5.0, "arrival", None)
        q.pop()
        q.push(5.0, "op_done", None)
        assert q.pop().time == 5.0

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(7.0, "arrival", None)
        assert q.peek_time() == 7.0
        assert len(q) == 1

    def test_bool_and_drain(self):
        q = EventQueue()
        assert not q
        q.push(1.0, "arrival", 1)
        q.push(2.0, "arrival", 2)
        assert q
        assert [e.payload for e in q.drain()] == [1, 2]
        assert not q


class TestSameTimeOrdering:
    """Regression pin for the same-time kind ranking.

    The determinism of every golden trace rests on this exact order, so
    it is spelled out here instead of being implied by scattered tests:
    at one instant, ``op_done`` < ``arrival`` < ``deadline`` < any other
    kind, and within one kind, insertion order.
    """

    def test_kind_rank_total_order_at_one_instant(self):
        q = EventQueue()
        # Push in an adversarial order; pops must follow the kind ranks.
        q.push(2.0, "custom", "x")
        q.push(2.0, "deadline", "d")
        q.push(2.0, "arrival", "a")
        q.push(2.0, "op_done", "o")
        assert [q.pop().kind for _ in range(4)] == [
            "op_done", "arrival", "deadline", "custom"
        ]

    def test_insertion_order_breaks_ties_within_each_kind(self):
        q = EventQueue()
        for kind in ("deadline", "op_done", "arrival"):
            for i in (1, 2):
                q.push(3.0, kind, f"{kind}-{i}")
        assert [q.pop().payload for _ in range(6)] == [
            "op_done-1", "op_done-2",
            "arrival-1", "arrival-2",
            "deadline-1", "deadline-2",
        ]

    def test_time_dominates_rank(self):
        q = EventQueue()
        q.push(1.0, "deadline", "early-deadline")
        q.push(2.0, "op_done", "late-done")
        assert q.pop().payload == "early-deadline"
        assert q.pop().payload == "late-done"

    def test_rank_is_resolved_at_push_time(self):
        """The stored event carries its rank (the heap never re-derives
        it at pop time), and ``sort_key`` reflects pop order."""
        q = EventQueue()
        done = q.push(4.0, "op_done", None)
        arr = q.push(4.0, "arrival", None)
        other = q.push(4.0, "mystery", None)
        assert done.rank < arr.rank < other.rank
        assert sorted([other, arr, done], key=lambda e: e.sort_key()) == [
            done, arr, other
        ]

    def test_unknown_kinds_rank_after_known_and_keep_insertion_order(self):
        q = EventQueue()
        q.push(1.0, "zeta", "first")
        q.push(1.0, "alpha", "second")
        q.push(1.0, "deadline", "known")
        assert [q.pop().payload for _ in range(3)] == [
            "known", "first", "second"
        ]
