"""Unit tests for priority inheritance and the wait-for graph."""

from repro.engine.inheritance import WaitForGraph
from repro.engine.job import Job
from repro.model.spec import TransactionSpec, read


def _job(name, priority):
    spec = TransactionSpec(name, (read("x"),), priority=priority)
    return Job(spec, 0, 0.0)


class TestInheritance:
    def test_direct_inheritance(self):
        high, low = _job("H", 3), _job("L", 1)
        g = WaitForGraph()
        g.block(high, [low])
        g.recompute_priorities([high, low])
        assert low.running_priority == 3
        assert high.running_priority == 3

    def test_transitive_inheritance(self):
        a, b, c = _job("A", 5), _job("B", 3), _job("C", 1)
        g = WaitForGraph()
        g.block(a, [b])
        g.block(b, [c])
        g.recompute_priorities([a, b, c])
        assert c.running_priority == 5
        assert b.running_priority == 5

    def test_inheritance_reverts_on_unblock(self):
        high, low = _job("H", 3), _job("L", 1)
        g = WaitForGraph()
        g.block(high, [low])
        g.recompute_priorities([high, low])
        g.unblock(high)
        g.recompute_priorities([high, low])
        assert low.running_priority == 1

    def test_max_of_multiple_waiters(self):
        h1, h2, low = _job("H1", 5), _job("H2", 4), _job("L", 1)
        g = WaitForGraph()
        g.block(h1, [low])
        g.block(h2, [low])
        g.recompute_priorities([h1, h2, low])
        assert low.running_priority == 5

    def test_no_inherit_edges_do_not_boost(self):
        high, low = _job("H", 3), _job("L", 1)
        g = WaitForGraph()
        g.block(high, [low], inherit=False)
        g.recompute_priorities([high, low])
        assert low.running_priority == 1
        # ...but still participate in cycle detection.
        g.block(low, [high], inherit=False)
        assert g.find_cycle() is not None

    def test_forget_removes_as_blocker_and_waiter(self):
        a, b, c = _job("A", 3), _job("B", 2), _job("C", 1)
        g = WaitForGraph()
        g.block(a, [b, c])
        g.block(b, [c])
        g.forget(c)
        assert g.blockers_of(a) == (b,)
        assert not g.is_blocked(b)

    def test_waiters_on(self):
        a, b = _job("A", 2), _job("B", 1)
        g = WaitForGraph()
        g.block(a, [b])
        assert g.waiters_on(b) == (a,)
        assert g.waiters_on(a) == ()


class TestCycleDetection:
    def test_no_cycle(self):
        a, b, c = _job("A", 3), _job("B", 2), _job("C", 1)
        g = WaitForGraph()
        g.block(a, [b])
        g.block(b, [c])
        assert g.find_cycle() is None

    def test_two_cycle(self):
        a, b = _job("A", 2), _job("B", 1)
        g = WaitForGraph()
        g.block(a, [b])
        g.block(b, [a])
        cycle = g.find_cycle()
        assert cycle is not None
        assert {j.name for j in cycle} == {"A#0", "B#0"}

    def test_three_cycle_with_branch(self):
        a, b, c, d = _job("A", 4), _job("B", 3), _job("C", 2), _job("D", 1)
        g = WaitForGraph()
        g.block(a, [b])
        g.block(b, [c, d])
        g.block(d, [b])
        cycle = g.find_cycle()
        assert cycle is not None
        assert {j.name for j in cycle} == {"B#0", "D#0"}

    def test_cycle_removed_after_forget(self):
        a, b = _job("A", 2), _job("B", 1)
        g = WaitForGraph()
        g.block(a, [b])
        g.block(b, [a])
        g.forget(b)
        assert g.find_cycle() is None
