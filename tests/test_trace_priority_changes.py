"""Tests for priority-change tracking — the paper's inheritance narration.

Example 1, Section 3: "T3 inherits T2's priority since T3 blocks T2 ...
Again, T3 further inherits T1's priority."  These tests verify that exact
sequence from the recorded priority stream.
"""

import pytest

from repro.engine.simulator import SimConfig
from repro.model.priorities import assign_by_order
from repro.model.spec import TransactionSpec, compute, read, write
from tests.conftest import run


class TestExample1Inheritance:
    def test_t3_inherits_p2_then_p1(self, ex1):
        result = run(ex1, "rw-pcp")
        history = result.trace.priority_history("T3#0")
        p1, p2 = 3, 2
        # t=1: blocks T2 -> inherits P2.  t=2: blocks T1 -> inherits P1.
        assert history[:2] == [(1.0, p2), (2.0, p1)]

    def test_no_inheritance_under_pcp_da(self, ex1):
        """PCP-DA never blocks anyone on Example 1, so nobody inherits."""
        result = run(ex1, "pcp-da")
        assert result.trace.priority_changes == []


class TestInheritanceReversion:
    def test_priority_reverts_after_commit_of_waiter_chain(self):
        ts = assign_by_order([
            TransactionSpec("H", (read("x", 1.0),), offset=1.0),
            TransactionSpec("M", (compute(3.0),), offset=2.0),
            TransactionSpec("L", (write("x", 2.0), compute(1.0)), offset=0.0),
        ])
        result = run(ts, "rw-pcp")
        history = result.trace.priority_history("L#0")
        p_h, p_l = 3, 1
        # Inherits P_H at t=1 (H blocks on x), reverts at commit (t=3).
        assert (1.0, p_h) in history
        reversion = [entry for entry in history if entry[1] == p_l]
        assert reversion and reversion[0][0] == 3.0

    def test_transitive_chain_recorded(self):
        """H -> M -> L: L inherits P_H through M (PIP-2PL chain)."""
        ts = assign_by_order([
            TransactionSpec("H", (read("y", 1.0),), offset=2.0),
            TransactionSpec("M", (read("x", 1.0), write("y", 1.0)), offset=1.0),
            TransactionSpec("L", (write("x", 2.0), compute(1.0)), offset=0.0),
        ])
        result = run(ts, "pip-2pl")
        p_h = 3
        # M blocks on x (held by L) at t=1 -> L inherits P_M; H blocks on
        # y (held by M... M hasn't locked y yet; H's read of y is free).
        # The reliable fact: L inherited at least P_M at some point.
        history = dict(result.trace.priority_history("L#0"))
        assert max(history.values(), default=0) >= 2

    def test_ipcp_floor_changes_recorded(self):
        ts = assign_by_order([
            TransactionSpec("H", (read("x", 1.0),), offset=9.0),
            TransactionSpec("L", (read("x", 2.0),), offset=0.0),
        ])
        result = run(ts, "ipcp")
        history = result.trace.priority_history("L#0")
        # On granting x at t=0, L's floor rises to Aceil(x) = P_H = 2.
        assert history and history[0] == (0.0, 2)

    def test_duplicates_collapse(self, ex3):
        result = run(ex3, "rw-pcp", SimConfig(horizon=11.0, max_instances=2))
        for job_name in {j.name for j in result.jobs}:
            history = result.trace.priority_history(job_name)
            for (t1, l1), (t2, l2) in zip(history, history[1:]):
                assert l1 != l2
