"""Differential fault battery for the fault-tolerant sweep engine.

The contract under test is the one docs/RELIABILITY.md documents: for
*every* deterministic fault schedule — worker crashes, hung jobs,
transient exceptions, corrupted cache entries — the sweep completes, its
rendered output is **byte-identical** to the fault-free serial run, and
the :class:`~repro.experiments.parallel.RunnerStats` reliability counters
match the injected schedule.  A Hypothesis property generalises the
matrix to random schedules, and checkpoint–resume is exercised by killing
a sweep after ``k`` jobs and resuming it.

Counter determinism caveat (see docs/RELIABILITY.md): a pool breakage
requeues *every* outstanding attempt, so with ``jobs > 1`` a single crash
yields ``crashes == 1`` but ``retries >= 1`` (exact retry counts are only
asserted on schedules where at most one attempt is in flight).

Everything here is marked ``faults`` (``make verify-faults`` runs just
this battery); the long end-to-end cases are additionally marked
``faults_soak`` and excluded from the default tier-1 run.
"""

import os
import shutil
import tempfile
import warnings
from functools import partial

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import FaultSpecError, SweepResumeError
from repro.experiments import (
    FAULT_KINDS,
    ExperimentJob,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    JobTimeout,
    ParallelRunner,
    ResultCache,
    RetryPolicy,
    SweepManifest,
    TransientFault,
    WorkerCrash,
)
from repro.experiments.retry import FaultCounters, Task, execute_tasks
from repro.experiments.spec import ExperimentReport

pytestmark = pytest.mark.faults

#: Job names of the tiny differential batch (picklable, microsecond-fast).
TAGS = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta")

#: Injected hangs sleep this long; the policy timeout is well under it so
#: the timeout machinery (not the hang ending) is what recovers the job,
#: while both stay generous enough not to flake on a loaded machine.
#: The timeout is only armed in tests that actually inject hangs: the
#: pool marks a future "running" while it still sits in the IPC call
#: queue, so under heavy load a queued clean job can be spuriously timed
#: out — harmless (it just retries; byte-identity holds) but it would
#: break exact-counter assertions (see docs/RELIABILITY.md).
HANG_SECONDS = 2.0
JOB_TIMEOUT = 0.75


def _tiny_report(tag):
    """Module-level (picklable) report builder for the fault battery."""
    report = ExperimentReport(f"Tiny {tag}", "tests", artifact=tag)
    report.check(f"{tag} identity", tag, tag)
    report.check("arithmetic", 4, 2 + 2)
    return report


def _tiny_report_unless_missing(flag_path, tag):
    """Like :func:`_tiny_report` but dies while ``flag_path`` is absent.

    A non-retryable ``RuntimeError`` aborts the whole sweep, simulating a
    kill; creating the flag file afterwards lets the resumed run succeed
    with the *same* job identity (the flag path is part of the cache key
    either way).
    """
    if not os.path.exists(flag_path):
        raise RuntimeError(f"simulated interruption before {tag}")
    return _tiny_report(tag)


def _batch(tags=TAGS):
    return [
        ExperimentJob(tag, partial(_tiny_report, tag), params=(tag,))
        for tag in tags
    ]


def _render(reports):
    return "\n".join(report.render(verbose=True) for report in reports)


def _baseline(tags=TAGS):
    """The fault-free serial rendering every faulted run must reproduce."""
    return _render(ParallelRunner(jobs=1).run(_batch(tags)))


def _policy(**overrides):
    """A fast-retry policy: no backoff sleeps, generous budget."""
    defaults = dict(
        max_retries=3,
        backoff_base=0.0,
        backoff_cap=0.0,
        breaker_threshold=10,
    )
    defaults.update(overrides)
    return RetryPolicy(**defaults)


class TestFaultMatrix:
    """Each fault kind × jobs ∈ {1, 2, 4}: completes, identical, counted."""

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_flaky(self, jobs):
        plan = FaultPlan(specs=(FaultSpec("flaky", "beta", times=2),))
        runner = ParallelRunner(jobs=jobs, retry=_policy(), fault_plan=plan)
        assert _render(runner.run(_batch())) == _baseline()
        assert runner.stats.retries == 2
        assert runner.stats.timeouts == 0
        assert runner.stats.crashes == 0

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_hang(self, jobs):
        plan = FaultPlan(
            specs=(FaultSpec("hang", "gamma"),), hang_seconds=HANG_SECONDS
        )
        runner = ParallelRunner(
            jobs=jobs, retry=_policy(job_timeout=JOB_TIMEOUT),
            fault_plan=plan,
        )
        assert _render(runner.run(_batch())) == _baseline()
        assert runner.stats.crashes == 0
        if jobs == 1:
            # The serial thread-timeout path is precise.
            assert runner.stats.timeouts == 1
            assert runner.stats.retries == 1
        else:
            # The pool can spuriously time out a queued clean job under
            # load (see the HANG_SECONDS comment), so only lower bounds
            # are exact here.
            assert runner.stats.timeouts >= 1
            assert runner.stats.retries >= 1

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_crash(self, jobs):
        plan = FaultPlan(specs=(FaultSpec("crash", "delta"),))
        runner = ParallelRunner(jobs=jobs, retry=_policy(), fault_plan=plan)
        assert _render(runner.run(_batch())) == _baseline()
        assert runner.stats.crashes == 1
        if jobs == 1:
            # In-process the crash is simulated and only that attempt retries.
            assert runner.stats.retries == 1
        else:
            # A pool breakage requeues every outstanding attempt, so the
            # exact retry count depends on scheduling — but at least the
            # crashed job itself must have been retried.
            assert runner.stats.retries >= 1

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_corrupt(self, jobs, tmp_path):
        # The cold run writes entries and corrupts delta's; the warm run
        # must quarantine it, recompute, and still render identically.
        plan = FaultPlan(specs=(FaultSpec("corrupt", "delta"),))
        cold = ParallelRunner(
            jobs=jobs, cache=ResultCache(tmp_path), retry=_policy(),
            fault_plan=plan,
        )
        assert _render(cold.run(_batch())) == _baseline()

        warm = ParallelRunner(jobs=jobs, cache=ResultCache(tmp_path),
                              retry=_policy())
        with pytest.warns(RuntimeWarning, match="quarantined corrupt"):
            rendered = _render(warm.run(_batch()))
        assert rendered == _baseline()
        assert warm.stats.quarantined == 1
        assert warm.stats.cache_hits == len(TAGS) - 1
        assert warm.stats.cache_misses == 1
        assert warm.stats.executed == 1

    def test_combined_schedule(self):
        plan = FaultPlan(
            specs=(
                FaultSpec("flaky", "alpha"),
                FaultSpec("hang", "epsilon"),
                FaultSpec("flaky", "zeta", times=2),
            ),
            hang_seconds=HANG_SECONDS,
        )
        runner = ParallelRunner(
            jobs=4, retry=_policy(max_retries=5, job_timeout=JOB_TIMEOUT),
            fault_plan=plan,
        )
        assert _render(runner.run(_batch())) == _baseline()
        assert runner.stats.retries >= 4
        assert runner.stats.timeouts >= 1


class TestBreakerAndExhaustion:
    def test_breaker_degrades_to_serial(self):
        # Threshold 1: the first pool breakage opens the breaker and the
        # rest of the sweep finishes in-process (where the second crash
        # fault is simulated, retried, and survived).
        plan = FaultPlan(
            specs=(FaultSpec("crash", "alpha"), FaultSpec("crash", "zeta"))
        )
        runner = ParallelRunner(
            jobs=3, retry=_policy(breaker_threshold=1), fault_plan=plan
        )
        assert _render(runner.run(_batch())) == _baseline()
        assert runner.stats.degradations == 1
        assert runner.stats.crashes >= 1

    def test_exhausted_retry_budget_propagates(self):
        plan = FaultPlan(specs=(FaultSpec("flaky", "beta", times=3),))
        runner = ParallelRunner(
            jobs=1, retry=_policy(max_retries=1), fault_plan=plan
        )
        with pytest.raises(TransientFault):
            runner.run(_batch())
        assert runner.stats.retries == 1

    def test_non_retryable_exception_fails_fast(self, tmp_path):
        flag = tmp_path / "never-created"
        batch = _batch(("alpha",))
        batch.append(
            ExperimentJob(
                "boom",
                partial(_tiny_report_unless_missing, str(flag), "boom"),
                params=(str(flag), "boom"),
            )
        )
        runner = ParallelRunner(jobs=1, retry=_policy())
        with pytest.raises(RuntimeError, match="simulated interruption"):
            runner.run(batch)
        assert runner.stats.retries == 0


class TestRetryPrimitives:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="job_timeout"):
            RetryPolicy(job_timeout=0)
        with pytest.raises(ValueError, match="backoff_base"):
            RetryPolicy(backoff_base=0.5, backoff_cap=0.1)
        with pytest.raises(ValueError, match="breaker_threshold"):
            RetryPolicy(breaker_threshold=0)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(jitter_seed=7, backoff_base=0.01, backoff_cap=0.5)
        # With no previous delay the recurrence collapses to the base.
        assert policy.backoff_delay("table1", 1, 0.0) == 0.01
        # With history the jittered draw is deterministic and bounded,
        # and distinct per (key, attempt, seed).
        first = policy.backoff_delay("table1", 2, 0.05)
        assert first == policy.backoff_delay("table1", 2, 0.05)
        assert 0.01 <= first <= 0.5
        assert policy.backoff_delay("figure2", 2, 0.05) != first
        assert policy.backoff_delay("table1", 3, 0.05) != first
        other = RetryPolicy(jitter_seed=8, backoff_base=0.01, backoff_cap=0.5)
        assert other.backoff_delay("table1", 2, 0.05) != first

    def test_retryable_counter_attribution(self):
        counters = FaultCounters()
        plan = FaultPlan(specs=(FaultSpec("flaky", "solo"),))
        injector = FaultInjector(plan.resolve(["solo"]))

        def make(attempt, in_process):
            return injector.wrap(partial(_tiny_report, "solo"), "solo",
                                 in_process=in_process)

        results = execute_tasks(
            [Task(key="solo", make=make)],
            policy=RetryPolicy(max_retries=2, backoff_base=0.0,
                               backoff_cap=0.0),
            counters=counters,
        )
        assert results[0] == _tiny_report("solo")
        assert counters.retries == 1
        assert JobTimeout.counter == "timeouts"
        assert WorkerCrash.counter == "crashes"


class TestFaultPlanGrammar:
    def test_parse_full_grammar(self):
        plan = FaultPlan.parse(
            "flaky:table1@2, crash:figure3, random:11:4, hang-seconds=0.5"
        )
        assert plan.specs == (
            FaultSpec("flaky", "table1", times=2),
            FaultSpec("crash", "figure3"),
        )
        assert plan.random_entries == ((11, 4),)
        assert plan.hang_seconds == 0.5

    @pytest.mark.parametrize("bad", [
        "bogus:table1",            # unknown kind
        "flaky",                   # missing job
        "flaky:table1@zero",       # bad @times
        "flaky:table1@0",          # times < 1
        "random:seed:3",           # non-integer seed
        "random:1",                # wrong arity
        "hang-seconds=fast",       # bad float
        "hang-seconds=-1",         # negative
        " , ,",                    # schedules nothing
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(bad)

    def test_random_resolution_is_deterministic(self):
        names = list(TAGS)
        first = FaultPlan.random(seed=3, count=5).resolve(names)
        again = FaultPlan.random(seed=3, count=5).resolve(names)
        assert first == again
        assert len(first.specs) == 5
        assert all(spec.job in TAGS for spec in first.specs)
        assert FaultPlan.random(seed=4, count=5).resolve(names) != first

    def test_resolve_rejects_unknown_job(self):
        plan = FaultPlan(specs=(FaultSpec("flaky", "nosuchjob"),))
        with pytest.raises(FaultSpecError, match="unknown job"):
            plan.resolve(list(TAGS))

    def test_total_scheduled(self):
        plan = FaultPlan(specs=(
            FaultSpec("flaky", "a", times=2), FaultSpec("flaky", "b"),
            FaultSpec("crash", "a"),
        ))
        assert plan.total_scheduled("flaky") == 3
        assert plan.total_scheduled("crash") == 1
        assert plan.total_scheduled("hang") == 0


class TestFaultInjector:
    def test_rejects_unresolved_random_entries(self):
        with pytest.raises(FaultSpecError, match="resolve"):
            FaultInjector(FaultPlan.random(seed=1, count=2))

    def test_budget_consumed_per_attempt(self):
        plan = FaultPlan(specs=(FaultSpec("flaky", "alpha", times=2),))
        injector = FaultInjector(plan.resolve(["alpha"]))
        base = partial(_tiny_report, "alpha")
        for _ in range(2):
            sabotaged = injector.wrap(base, "alpha", in_process=True)
            with pytest.raises(TransientFault):
                sabotaged()
        # Budget spent: further attempts run clean.
        assert injector.wrap(base, "alpha", in_process=True) is base
        assert injector.fired["flaky"] == 2

    def test_crash_simulated_in_process(self):
        plan = FaultPlan(specs=(FaultSpec("crash", "alpha"),))
        injector = FaultInjector(plan.resolve(["alpha"]))
        sabotaged = injector.wrap(partial(_tiny_report, "alpha"), "alpha",
                                  in_process=True)
        with pytest.raises(WorkerCrash):
            sabotaged()

    def test_corrupt_before_get_waits_for_an_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("alpha", _tiny_report, ("alpha",))
        plan = FaultPlan(specs=(FaultSpec("corrupt", "alpha"),))
        injector = FaultInjector(plan.resolve(["alpha"]))
        # Nothing on disk yet: the budget must be preserved, not burned.
        assert injector.corrupt_before_get(cache, key, "alpha") is False
        assert injector.fired["corrupt"] == 0
        cache.put(key, _tiny_report("alpha"))
        assert injector.corrupt_before_get(cache, key, "alpha") is True
        assert injector.fired["corrupt"] == 1
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get(key) is None
        assert cache.quarantined == 1


class TestQuarantine:
    def test_truncated_entry_quarantined_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("alpha", _tiny_report, ("alpha",))
        cache.put(key, _tiny_report("alpha"))
        path = cache._path(key)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.warns(RuntimeWarning, match="quarantined corrupt"):
            assert cache.get(key) is None
        assert cache.misses == 1 and cache.quarantined == 1
        assert list(cache.quarantine_dir.iterdir())
        assert len(cache) == 0  # quarantined entries are not live

    def test_checksum_mismatch_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("alpha", _tiny_report, ("alpha",))
        cache.put(key, _tiny_report("alpha"))
        path = cache._path(key)
        # Valid JSON, valid shape, wrong bytes: only the checksum catches it.
        text = path.read_text().replace("arithmetic", "arithmetik")
        path.write_text(text)
        with pytest.warns(RuntimeWarning, match="quarantined corrupt"):
            assert cache.get(key) is None
        assert cache.quarantined == 1

    def test_unwritable_quarantine_falls_back_to_delete(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("alpha", _tiny_report, ("alpha",))
        cache.put(key, _tiny_report("alpha"))
        path = cache._path(key)
        path.write_text("{broken")
        (tmp_path / "quarantine").write_text("occupied")  # mkdir will fail
        with pytest.warns(RuntimeWarning, match="quarantine unavailable"):
            assert cache.get(key) is None
        assert not path.exists()
        assert cache.quarantined == 1


class TestManifest:
    def test_round_trip(self, tmp_path):
        manifest = SweepManifest(tmp_path / "m.jsonl")
        digest = SweepManifest.batch_digest(["k1", "k2", "k3"])
        manifest.start(digest, 3)
        manifest.record("k1")
        manifest.record("k3")
        assert manifest.load() == (digest, {"k1", "k3"})

    def test_digest_is_order_sensitive(self):
        assert SweepManifest.batch_digest(["a", "b"]) != (
            SweepManifest.batch_digest(["b", "a"])
        )

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(SweepResumeError, match="no sweep manifest"):
            SweepManifest(tmp_path / "absent.jsonl").load()

    def test_garbage_header_raises(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text("not json\nk1\n")
        with pytest.raises(SweepResumeError, match="unreadable"):
            SweepManifest(path).load()


class TestCheckpointResume:
    def _interrupted_batch(self, flag_path, kill_at):
        """The TAGS batch with job ``kill_at`` exploding until the flag exists."""
        batch = _batch()
        tag = TAGS[kill_at]
        batch[kill_at] = ExperimentJob(
            tag,
            partial(_tiny_report_unless_missing, str(flag_path), tag),
            params=(str(flag_path), tag),
        )
        return batch

    @pytest.mark.parametrize("kill_at", [0, 3, 5])
    def test_kill_and_resume_round_trip(self, kill_at, tmp_path):
        flag = tmp_path / "recovered"
        batch = self._interrupted_batch(flag, kill_at)
        baseline = _render(ParallelRunner(jobs=1).run(_batch()))

        first = ParallelRunner(jobs=1, cache=ResultCache(tmp_path / "c"))
        with pytest.raises(RuntimeError, match="simulated interruption"):
            first.run(batch)

        # The journal names exactly the finished prefix of work.
        cache = ResultCache(tmp_path / "c")
        keys = [cache.key_for(j.name, j.func, j.params) for j in batch]
        digest, completed = SweepManifest(cache.manifest_path).load()
        assert digest == SweepManifest.batch_digest(keys)
        assert completed == set(keys[:kill_at])

        flag.write_text("ok")  # "fix" the environment, then resume
        resumed = ParallelRunner(
            jobs=1, cache=ResultCache(tmp_path / "c"), resume=True
        )
        rendered = _render(resumed.run(batch))
        # The exploding job builds the same report once the flag exists, so
        # the resumed sweep must reproduce the fault-free serial bytes.
        assert rendered == baseline
        assert resumed.stats.resumed == kill_at
        assert resumed.stats.cache_hits == kill_at
        assert resumed.stats.executed == len(TAGS) - kill_at

        # After resume the manifest matches an uninterrupted run's.
        _, final = SweepManifest(cache.manifest_path).load()
        assert final == set(keys)

    def test_resume_requires_cache(self):
        runner = ParallelRunner(jobs=1, resume=True)
        with pytest.raises(SweepResumeError, match="cache"):
            runner.run(_batch())

    def test_resume_rejects_stale_manifest(self, tmp_path):
        cache_dir = tmp_path / "c"
        done = ParallelRunner(jobs=1, cache=ResultCache(cache_dir))
        done.run(_batch(("alpha", "beta")))
        runner = ParallelRunner(
            jobs=1, cache=ResultCache(cache_dir), resume=True
        )
        with pytest.raises(SweepResumeError, match="stale"):
            runner.run(_batch())  # different batch than the journal's

    def test_resume_with_no_prior_manifest(self, tmp_path):
        runner = ParallelRunner(
            jobs=1, cache=ResultCache(tmp_path / "c"), resume=True
        )
        with pytest.raises(SweepResumeError, match="no sweep manifest"):
            runner.run(_batch())

    def test_completed_sweep_resumes_as_all_cached(self, tmp_path):
        cache_dir = tmp_path / "c"
        ParallelRunner(jobs=1, cache=ResultCache(cache_dir)).run(_batch())
        again = ParallelRunner(
            jobs=1, cache=ResultCache(cache_dir), resume=True
        )
        assert _render(again.run(_batch())) == _baseline()
        assert again.stats.resumed == len(TAGS)
        assert again.stats.executed == 0


def _schedules():
    """Hypothesis strategy: small random fault schedules over TAGS."""
    entry = st.tuples(
        st.sampled_from(("crash", "hang", "flaky")), st.sampled_from(TAGS)
    )
    return st.lists(entry, min_size=0, max_size=3)


class TestDifferentialProperties:
    """Random schedules: parallel-under-faults ≡ serial-fault-free."""

    @settings(max_examples=8, deadline=None)
    @given(schedule=_schedules(), jobs=st.sampled_from([1, 2]))
    def test_any_schedule_is_byte_identical(self, schedule, jobs):
        specs = tuple(FaultSpec(kind, job) for kind, job in schedule)
        plan = (
            FaultPlan(specs=specs, hang_seconds=HANG_SECONDS)
            if specs else None
        )
        # Worst case three faults hit one job, plus headroom for spurious
        # pool timeouts under load.
        runner = ParallelRunner(
            jobs=jobs,
            retry=_policy(max_retries=5, job_timeout=JOB_TIMEOUT),
            fault_plan=plan,
        )
        assert _render(runner.run(_batch())) == _baseline()
        flaky_scheduled = sum(1 for kind, _ in schedule if kind == "flaky")
        assert runner.stats.retries >= flaky_scheduled

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_seeded_random_plans_are_byte_identical(self, seed):
        plan = FaultPlan.random(seed=seed, count=3,
                                hang_seconds=HANG_SECONDS)
        work = tempfile.mkdtemp(prefix="repro-faults-")
        try:
            with warnings.catch_warnings():
                # Corrupt faults drawn by the seed quarantine entries.
                warnings.simplefilter("ignore", RuntimeWarning)
                runner = ParallelRunner(
                    jobs=2, cache=ResultCache(work),
                    retry=_policy(max_retries=5, job_timeout=JOB_TIMEOUT),
                    fault_plan=plan,
                )
                rendered = _render(runner.run(_batch()))
        finally:
            shutil.rmtree(work, ignore_errors=True)
        assert rendered == _baseline()

    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(kill_at=st.integers(min_value=0, max_value=len(TAGS) - 1))
    def test_resume_round_trip_property(self, kill_at):
        work = tempfile.mkdtemp(prefix="repro-resume-")
        try:
            flag = os.path.join(work, "recovered")
            batch = _batch()
            tag = TAGS[kill_at]
            batch[kill_at] = ExperimentJob(
                tag,
                partial(_tiny_report_unless_missing, flag, tag),
                params=(flag, tag),
            )
            cache_dir = os.path.join(work, "cache")
            first = ParallelRunner(jobs=1, cache=ResultCache(cache_dir))
            with pytest.raises(RuntimeError):
                first.run(batch)
            with open(flag, "w", encoding="utf-8") as handle:
                handle.write("ok")
            resumed = ParallelRunner(
                jobs=1, cache=ResultCache(cache_dir), resume=True
            )
            rendered = _render(resumed.run(batch))
            assert resumed.stats.resumed == kill_at
            assert resumed.stats.executed == len(TAGS) - kill_at
        finally:
            shutil.rmtree(work, ignore_errors=True)
        assert rendered == _baseline()


@pytest.mark.faults_soak
class TestSoakEndToEnd:
    """Full-ledger CLI runs under each fault kind (excluded from tier-1)."""

    def _reproduce(self, capsys, argv):
        from repro.cli import main

        assert main(["reproduce"] + argv) == 0
        captured = capsys.readouterr()
        assert "ALL CHECKS PASS" in captured.out
        return captured

    def test_flaky_ledger_byte_identical(self, capsys):
        base = self._reproduce(capsys, ["--no-cache"])
        faulted = self._reproduce(capsys, [
            "--no-cache", "--jobs", "4", "--retries", "3",
            "--inject-faults", "flaky:table1@2,flaky:section9-sweep",
        ])
        assert faulted.out == base.out
        assert "retries=3" in faulted.err

    def test_crash_ledger_byte_identical(self, capsys):
        base = self._reproduce(capsys, ["--no-cache"])
        faulted = self._reproduce(capsys, [
            "--no-cache", "--jobs", "4", "--retries", "3",
            "--inject-faults", "crash:figure2",
        ])
        assert faulted.out == base.out
        assert "crashes=1" in faulted.err

    def test_hang_ledger_byte_identical(self, capsys):
        base = self._reproduce(capsys, ["--no-cache"])
        faulted = self._reproduce(capsys, [
            "--no-cache", "--jobs", "4", "--retries", "3",
            "--job-timeout", "5", "--inject-faults",
            "hang:example5,hang-seconds=8",
        ])
        assert faulted.out == base.out
        assert "timeouts=1" in faulted.err

    def test_corrupt_ledger_byte_identical(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        base = self._reproduce(capsys, ["--no-cache"])
        self._reproduce(capsys, [
            "--cache-dir", cache_dir, "--jobs", "4",
            "--inject-faults", "corrupt:figure1,corrupt:table1",
        ])
        with pytest.warns(RuntimeWarning, match="quarantined corrupt"):
            warm = self._reproduce(capsys, [
                "--cache-dir", cache_dir, "--jobs", "4",
            ])
        assert warm.out == base.out
        assert "quarantined=2" in warm.err

    def test_random_schedule_sweep(self):
        # Five seeds, four workers, tiny batch: nothing may ever leak
        # through to the rendered bytes.
        baseline = _baseline()
        for seed in range(5):
            plan = FaultPlan.random(seed=seed, count=5,
                                    hang_seconds=HANG_SECONDS)
            work = tempfile.mkdtemp(prefix="repro-soak-")
            try:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    runner = ParallelRunner(
                        jobs=4, cache=ResultCache(work),
                        retry=_policy(max_retries=6), fault_plan=plan,
                    )
                    assert _render(runner.run(_batch())) == baseline
            finally:
                shutil.rmtree(work, ignore_errors=True)
