"""Tests for the refined (critical-section) blocking terms."""

import pytest

from repro.analysis.blocking import blocking_terms
from repro.analysis.critical_instant import simulate_worst_responses
from repro.analysis.refined_blocking import (
    refined_blocking_term,
    refined_blocking_terms,
)
from repro.analysis.response_time import response_times, rta_schedulable
from repro.exceptions import AnalysisError
from repro.model.priorities import assign_by_order
from repro.model.spec import TransactionSpec, compute, read, write
from repro.workloads.examples import example4_taskset
from repro.workloads.generator import WorkloadConfig, generate_taskset


class TestRefinedTerms:
    def test_never_exceeds_whole_c_bound(self):
        for seed in range(15):
            ts = generate_taskset(
                WorkloadConfig(n_transactions=6, n_items=6, seed=seed,
                               write_probability=0.4)
            )
            for protocol in ("pcp-da", "rw-pcp", "pcp"):
                classic = blocking_terms(ts, protocol)
                refined = refined_blocking_terms(ts, protocol)
                for name in ts.names:
                    assert refined[name] <= classic[name] + 1e-9

    def test_late_critical_section_shrinks_the_bound(self):
        """A blocker whose offending read comes after a long prefix blocks
        for only the tail, not its whole C."""
        high = TransactionSpec("H", (write("x", 1.0),), period=10.0)
        low = TransactionSpec(
            "L", (compute(6.0), read("x", 2.0)), period=40.0
        )
        ts = assign_by_order([high, low])
        classic = blocking_terms(ts, "pcp-da")["H"]
        refined = refined_blocking_term(ts, "H", "pcp-da")
        assert classic == 8.0      # whole C_L
        assert refined == 2.0      # just the read-to-commit tail

    def test_early_critical_section_keeps_full_bound(self):
        high = TransactionSpec("H", (write("x", 1.0),), period=10.0)
        low = TransactionSpec(
            "L", (read("x", 2.0), compute(6.0)), period=40.0
        )
        ts = assign_by_order([high, low])
        assert refined_blocking_term(ts, "H", "pcp-da") == 8.0

    def test_zero_when_nothing_offends(self):
        high = TransactionSpec("H", (read("x", 1.0),), period=10.0)
        low = TransactionSpec("L", (read("y", 3.0),), period=40.0)
        ts = assign_by_order([high, low])
        assert refined_blocking_term(ts, "H", "pcp-da") == 0.0

    def test_rw_pcp_counts_writes_too(self):
        """Example 4: T4's write of x offends T1 under RW-PCP but not
        under PCP-DA."""
        ts = example4_taskset()
        assert refined_blocking_term(ts, "T1", "pcp-da") == 0.0
        rw = refined_blocking_term(ts, "T1", "rw-pcp")
        # T4: Read(y,1), Write(x,1), Compute(3): the write starts at
        # offset 1, so the critical section is C-1 = 4.
        assert rw == 4.0

    def test_unknown_protocol_rejected(self):
        ts = example4_taskset()
        with pytest.raises(AnalysisError):
            refined_blocking_terms(ts, "magic")


class TestRefinedRTASoundness:
    def test_refined_rta_still_upper_bounds_simulation(self):
        """RTA with refined B_i must still dominate the critical-instant
        simulated worst responses."""
        checked = 0
        for seed in range(8):
            ts = generate_taskset(
                WorkloadConfig(
                    n_transactions=4, n_items=5, write_probability=0.4,
                    hot_access_probability=0.8, target_utilization=0.55,
                    seed=seed,
                )
            )
            refined = refined_blocking_terms(ts, "pcp-da")
            if not rta_schedulable(ts, "pcp-da", blocking=refined):
                continue
            bounds = response_times(ts, "pcp-da", blocking=refined)
            observed = simulate_worst_responses(ts, "pcp-da")
            checked += 1
            for name, worst in observed.items():
                assert worst <= bounds[name] + 1e-6, (
                    f"seed={seed} {name}: {worst} > refined bound {bounds[name]}"
                )
        assert checked >= 4

    def test_refined_terms_accept_more_sets(self):
        """On a set engineered around a late critical section, the refined
        analysis accepts what the whole-C analysis rejects."""
        high = TransactionSpec("H", (write("x", 2.5),), period=10.0)
        low = TransactionSpec(
            "L", (compute(7.5), read("x", 0.5)), period=40.0
        )
        ts = assign_by_order([high, low])
        classic = blocking_terms(ts, "pcp-da")
        refined = refined_blocking_terms(ts, "pcp-da")
        from repro.analysis.rm_bound import rm_schedulable

        assert not rm_schedulable(ts, blocking=classic)
        assert rm_schedulable(ts, blocking=refined)
