"""Scale / soak integration tests: bigger sets, longer horizons.

The unit suite exercises small scenarios; these runs push the engine to
hundreds of jobs and thousands of events per simulation and re-assert the
full invariant battery, the conservation laws, and the analysis bounds on
the same run.  Kept to a handful of configurations so the whole file stays
under a few seconds.
"""

import pytest

from repro.analysis.blocking import blocking_terms
from repro.engine.job import JobState
from repro.engine.simulator import SimConfig, Simulator
from repro.protocols import make_protocol
from repro.trace.metrics import compute_metrics
from repro.verify import (
    assert_deadlock_free,
    assert_serializable,
    assert_single_blocking,
    verify_pcp_da_run,
)
from repro.workloads.generator import WorkloadConfig, generate_taskset

_CONFIG = WorkloadConfig(
    n_transactions=10,
    n_items=12,
    ops_per_txn=(2, 6),
    write_probability=0.4,
    rmw_probability=0.3,
    hot_access_probability=0.7,
    target_utilization=0.75,
    seed=42,
)


@pytest.fixture(scope="module")
def big_taskset():
    return generate_taskset(_CONFIG)


class TestSoak:
    def test_pcp_da_ten_hyperperiods(self, big_taskset):
        hp = big_taskset.hyperperiod()
        assert hp is not None
        result = Simulator(
            big_taskset, make_protocol("pcp-da"),
            SimConfig(horizon=10 * hp),
        ).run()
        assert len(result.jobs) > 100
        verify_pcp_da_run(result)
        metrics = compute_metrics(result)
        assert metrics.committed_jobs >= len(result.jobs) - len(big_taskset)

    def test_lemma_monitors_at_scale(self, big_taskset):
        hp = big_taskset.hyperperiod()
        protocol = make_protocol("pcp-da-checked")
        Simulator(big_taskset, protocol, SimConfig(horizon=3 * hp)).run()
        assert protocol.checks_performed > 200

    @pytest.mark.parametrize("protocol", ["rw-pcp", "ccp", "pcp", "ipcp"])
    def test_baselines_at_scale(self, big_taskset, protocol):
        hp = big_taskset.hyperperiod()
        result = Simulator(
            big_taskset, make_protocol(protocol), SimConfig(horizon=3 * hp)
        ).run()
        assert_deadlock_free(result)
        assert_serializable(result)
        if protocol in ("rw-pcp", "pcp"):
            assert_single_blocking(result)

    def test_analysis_bound_holds_at_scale(self, big_taskset):
        hp = big_taskset.hyperperiod()
        terms = blocking_terms(big_taskset, "pcp-da")
        result = Simulator(
            big_taskset, make_protocol("pcp-da"), SimConfig(horizon=5 * hp)
        ).run()
        for job in result.jobs:
            assert job.total_blocking_time() <= terms[job.spec.name] + 1e-6

    def test_abort_protocols_at_scale(self, big_taskset):
        hp = big_taskset.hyperperiod()
        for protocol in ("2pl-hp", "occ-bc", "rw-pcp-abort"):
            result = Simulator(
                big_taskset, make_protocol(protocol),
                SimConfig(horizon=3 * hp),
            ).run()
            assert_deadlock_free(result)
            assert_serializable(result)

    def test_cpu_never_oversubscribed_at_scale(self, big_taskset):
        hp = big_taskset.hyperperiod()
        result = Simulator(
            big_taskset, make_protocol("pcp-da"), SimConfig(horizon=3 * hp)
        ).run()
        segments = sorted(result.trace.segments, key=lambda s: s.start)
        for a, b in zip(segments, segments[1:]):
            assert a.end <= b.start + 1e-9
        total_executed = sum(s.end - s.start for s in segments)
        assert total_executed <= result.end_time + 1e-6
