"""Golden-trace corpus for the engine's differential battery.

The incremental scheduler-state fast path (ready heap, blocked set,
incremental ceiling index) must be *observationally invisible*: every
simulation has to produce byte-identical output to the original
filter-per-event engine.  This module pins that claim to disk:

* :data:`CORPUS` enumerates a fixed grid of (task set, protocol, config)
  runs — the paper's worked examples plus seeded random workloads — that
  exercises every protocol, both install policies, firm deadlines,
  deadlock handling, and the overhead knobs;
* :func:`trace_digest` canonicalises one run to its full JSON export and
  hashes it;
* ``python -m tests.golden_traces --write`` regenerates
  ``tests/golden/engine_trace_hashes.json`` (plus one full example trace
  kept readable for debugging diffs).

The hashes currently committed were produced by the *pre-fast-path* seed
engine; ``tests/test_engine_golden_traces.py`` asserts the live engine
still matches them.  Regenerate only when an intentional semantic change
is made, and say so in the commit message.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.simulator import SimConfig, Simulator
from repro.protocols import make_protocol
from repro.trace.export import result_to_json
from repro.workloads.examples import (
    example1_taskset,
    example3_taskset,
    example4_taskset,
    example5_taskset,
)
from repro.workloads.generator import WorkloadConfig, generate_taskset

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
HASH_FILE = GOLDEN_DIR / "engine_trace_hashes.json"
#: One full trace kept as readable JSON so a hash mismatch has a diffable
#: artifact next to it.
FULL_TRACE_CASE = "example4/pcp-da"
FULL_TRACE_FILE = GOLDEN_DIR / "example4_pcp-da.json"

#: Protocols run against every random workload (the `repro compare` set).
ALL_PROTOCOLS = (
    "pcp-da", "rw-pcp", "ccp", "pcp", "ipcp", "pip-2pl", "2pl-hp", "2pl",
    "occ-bc", "rw-pcp-abort",
)


def _workload(seed: int, **overrides) -> Callable[[], object]:
    def build():
        params = dict(
            n_transactions=6, n_items=10, write_probability=0.35,
            hot_access_probability=0.6, target_utilization=0.6, seed=seed,
        )
        params.update(overrides)
        return generate_taskset(WorkloadConfig(**params))

    return build


def _corpus() -> List[Tuple[str, Callable[[], object], str, Optional[SimConfig]]]:
    cases: List[Tuple[str, Callable[[], object], str, Optional[SimConfig]]] = []
    # The paper's worked examples, under the protocols their figures use.
    for proto in ("pcp-da", "rw-pcp", "ccp", "pcp", "ipcp", "pip-2pl"):
        cases.append((f"example1/{proto}", example1_taskset, proto, None))
    for proto in ("pcp-da", "rw-pcp"):
        cases.append((
            f"example3/{proto}", example3_taskset, proto,
            SimConfig(horizon=11, max_instances=2),
        ))
    for proto in ("pcp-da", "rw-pcp", "ccp"):
        cases.append((f"example4/{proto}", example4_taskset, proto, None))
    cases.append(("example5/pcp-da", example5_taskset, "pcp-da", None))
    cases.append((
        "example5/weak-pcp-da-halt", example5_taskset, "weak-pcp-da",
        SimConfig(deadlock_action="halt"),
    ))
    # Seeded random workloads under every protocol (abort_lowest so the
    # deadlock-prone baselines resolve cycles instead of raising).
    for seed in (1, 2, 3):
        build = _workload(seed)
        for proto in ALL_PROTOCOLS:
            cases.append((
                f"workload-s{seed}/{proto}", build, proto,
                SimConfig(deadlock_action="abort_lowest"),
            ))
    # Contended workload: more writes, hotter items.
    hot = _workload(11, n_transactions=8, n_items=6, write_probability=0.55,
                    hot_access_probability=0.85, target_utilization=0.75)
    for proto in ("pcp-da", "rw-pcp", "2pl-hp", "occ-bc"):
        cases.append((
            f"workload-hot/{proto}", hot, proto,
            SimConfig(deadlock_action="abort_lowest"),
        ))
    # Firm deadlines (deferred-update protocols only) and overhead knobs.
    firm = _workload(5, target_utilization=0.9)
    for proto in ("pcp-da", "occ-bc"):
        cases.append((
            f"workload-firm/{proto}", firm, proto,
            SimConfig(on_miss="abort", deadlock_action="abort_lowest"),
        ))
    cases.append((
        "workload-overheads/pcp-da", _workload(7), "pcp-da",
        SimConfig(lock_overhead=0.05, context_switch_overhead=0.02,
                  deadlock_action="abort_lowest"),
    ))
    cases.append((
        "workload-nosysceil/rw-pcp", _workload(9), "rw-pcp",
        SimConfig(record_sysceil=False, deadlock_action="abort_lowest"),
    ))
    return cases


CORPUS = _corpus()
CASE_NAMES = tuple(name for name, _, _, _ in CORPUS)


def run_case(
    name: str,
    build: Callable[[], object],
    protocol: str,
    config: Optional[SimConfig],
    *,
    kernel: Optional[bool] = None,
) -> str:
    """Simulate one corpus case and return its canonical JSON trace.

    ``kernel`` overrides :attr:`SimConfig.kernel` (the array-kernel vs
    object-path switch); ``None`` keeps the case's configured default.
    """
    if kernel is not None:
        config = dataclasses.replace(config or SimConfig(), kernel=kernel)
    result = Simulator(build(), make_protocol(protocol), config).run()
    return result_to_json(result)


def trace_digest(payload: str) -> str:
    """SHA-256 of one canonical JSON trace."""
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def compute_digests() -> Dict[str, str]:
    """Run the whole corpus; ``{case name: trace digest}``."""
    return {
        name: trace_digest(run_case(name, build, proto, config))
        for name, build, proto, config in CORPUS
    }


def load_golden() -> Dict[str, str]:
    """The committed seed-engine digests."""
    return json.loads(HASH_FILE.read_text())["digests"]


def write_golden() -> None:
    """Regenerate the golden files from the live engine."""
    GOLDEN_DIR.mkdir(exist_ok=True)
    digests = compute_digests()
    HASH_FILE.write_text(
        json.dumps(
            {
                "comment": (
                    "SHA-256 of result_to_json() for each corpus case in "
                    "tests/golden_traces.py; regenerate with "
                    "`PYTHONPATH=src python -m tests.golden_traces --write`"
                ),
                "digests": digests,
            },
            indent=2,
        )
        + "\n"
    )
    for name, build, proto, config in CORPUS:
        if name == FULL_TRACE_CASE:
            FULL_TRACE_FILE.write_text(run_case(name, build, proto, config) + "\n")
    print(f"wrote {len(digests)} digests to {HASH_FILE}")


if __name__ == "__main__":  # pragma: no cover - regeneration entry point
    import sys

    if "--write" in sys.argv:
        write_golden()
    else:
        print("pass --write to regenerate the golden files")
