"""Unit tests for the RM utilisation-bound condition (repro.analysis.rm_bound)."""

import math

import pytest

from repro.analysis.rm_bound import (
    liu_layland_bound,
    rm_schedulable,
    rm_schedulable_detail,
)
from repro.exceptions import AnalysisError
from repro.model.priorities import assign_by_order
from repro.model.spec import TransactionSpec, compute, read, write


def _periodic(name, c, period, ops=None, offset=0.0):
    operations = ops if ops is not None else (compute(c),)
    return TransactionSpec(name, operations, period=period, offset=offset)


class TestLiuLaylandBound:
    def test_known_values(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(2 * (math.sqrt(2) - 1))
        assert liu_layland_bound(3) == pytest.approx(3 * (2 ** (1 / 3) - 1))

    def test_monotonically_decreasing_to_ln2(self):
        values = [liu_layland_bound(i) for i in range(1, 50)]
        assert all(a > b for a, b in zip(values, values[1:]))
        assert values[-1] > math.log(2)

    def test_invalid_index(self):
        with pytest.raises(AnalysisError):
            liu_layland_bound(0)


class TestRMSchedulable:
    def test_independent_set_below_bound_passes(self):
        ts = assign_by_order([
            _periodic("A", 1.0, 10.0),
            _periodic("B", 2.0, 20.0),
        ])
        assert rm_schedulable(ts, "pcp-da")

    def test_overloaded_set_fails(self):
        ts = assign_by_order([
            _periodic("A", 9.0, 10.0),
            _periodic("B", 5.0, 20.0),
        ])
        assert not rm_schedulable(ts, "pcp-da")

    def test_blocking_term_included(self):
        """A set that fits without blocking fails once B_i is added."""
        high = TransactionSpec(
            "H", (write("x", 1.0),), period=4.0  # U = 0.25
        )
        low = TransactionSpec(
            "L", (read("x", 3.0),), period=12.0  # U = 0.25, C = 3
        )
        ts = assign_by_order([high, low])
        # Under RW-PCP (and PCP-DA - L *reads* x with Wceil(x) = P_H):
        # B_H = C_L = 3, so level 1 requires 1/4 + 3/4 <= 1.0: exactly 1.0.
        detail = rm_schedulable_detail(ts, "pcp-da")
        assert detail.levels[0].blocking_term == 3.0
        assert detail.schedulable  # exactly at the bound
        # Stretch L a little and it fails.
        stretched = assign_by_order([
            high, TransactionSpec("L", (read("x", 3.1),), period=12.0)
        ])
        assert not rm_schedulable(stretched, "pcp-da")

    def test_pcp_da_accepts_where_rw_pcp_rejects(self):
        """Example 3's pattern: the write-only blocker drops out of
        PCP-DA's BTS, flipping the verdict."""
        t1 = TransactionSpec(
            "T1", (read("x", 1.0), read("y", 1.0)), period=5.0
        )
        t2 = TransactionSpec(
            "T2", (write("x", 1.0), compute(1.0), write("y", 1.0)), period=20.0
        )
        ts = assign_by_order([t1, t2])
        # Level 1 under RW-PCP: 2/5 + 3/5 = 1.0 > 1.0? == 1.0 passes...
        # use the detail to compare the blocking terms directly.
        rw = rm_schedulable_detail(ts, "rw-pcp")
        da = rm_schedulable_detail(ts, "pcp-da")
        assert rw.levels[0].blocking_term == 3.0
        assert da.levels[0].blocking_term == 0.0
        assert da.levels[0].cumulative_utilization < rw.levels[0].bound

    def test_explicit_blocking_override(self):
        ts = assign_by_order([_periodic("A", 1.0, 10.0)])
        assert rm_schedulable(ts, blocking={"A": 0.0})
        assert not rm_schedulable(ts, blocking={"A": 9.5})

    def test_requires_periods(self):
        ts = assign_by_order([TransactionSpec("A", (compute(1.0),))])
        with pytest.raises(AnalysisError):
            rm_schedulable(ts)

    def test_detail_levels_ordered_by_priority(self):
        ts = assign_by_order([
            _periodic("A", 1.0, 5.0),
            _periodic("B", 1.0, 10.0),
            _periodic("C", 1.0, 20.0),
        ])
        detail = rm_schedulable_detail(ts)
        assert [l.transaction for l in detail.levels] == ["A", "B", "C"]
        assert [l.level for l in detail.levels] == [1, 2, 3]
        utils = [l.cumulative_utilization for l in detail.levels]
        assert utils == sorted(utils)

    def test_failing_levels_reported(self):
        ts = assign_by_order([
            _periodic("A", 5.0, 10.0),
            _periodic("B", 5.0, 10.1),
        ])
        detail = rm_schedulable_detail(ts)
        assert not detail.schedulable
        assert [l.transaction for l in detail.failing_levels()] == ["B"]
