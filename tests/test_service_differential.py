"""Differential battery: service decisions vs the simulator's conditions.

The service routes every lock request through ``protocol.decide`` — the
same object, the same locking conditions (LC1–LC4, the Table-1 footnote)
the simulator evaluates.  These tests pin that claim from the outside:
before each operation the expected decision is computed by calling the
protocol directly (``decide`` is read-only), then the operation is issued
and its observable outcome (granted immediately / parked / abort-granted)
must match.  The one documented divergence is the service's *order guard*
(serialization-order enforcement, see ``repro/service/manager.py``),
which may turn a protocol Grant into a wait — the driver recognises it by
its reason string and asserts it only ever *tightens* decisions, never
loosens them.
"""

import asyncio
import random

import pytest

from repro.db.serializability import check_serializable
from repro.engine.interfaces import AbortAndGrant, Deny, Grant
from repro.exceptions import ServiceError, TransactionAborted
from repro.model.spec import LockMode, OpKind
from repro.service import LockManager, ServiceConfig
from repro.service.manager import SessionState
from repro.workloads.generator import WorkloadConfig, generate_taskset

PROTOCOLS = ("pcp-da", "pcp", "rw-pcp", "ipcp", "2pl", "2pl-hp", "occ-bc")


def run(coro):
    return asyncio.run(coro)


async def settle(steps: int = 5) -> None:
    for _ in range(steps):
        await asyncio.sleep(0)


class Driver:
    """Randomised multi-session interleaver with per-request checking."""

    def __init__(self, manager: LockManager, seed: int):
        self.manager = manager
        self.rng = random.Random(seed)
        self.mismatches = []
        self.checked = 0
        self.guard_waits = 0

    def _needs_lock(self, session, item, mode):
        job = session.job
        if mode is LockMode.WRITE:
            return not self.manager.table.holds(job, item, LockMode.WRITE)
        if job.workspace.has_write(item):
            return False
        return not (
            self.manager.table.holds(job, item, LockMode.READ)
            or self.manager.table.holds(job, item, LockMode.WRITE)
        )

    async def issue(self, session, op) -> "asyncio.Task | None":
        """Issue one catalog operation, checking the decision first."""
        manager = self.manager
        mode = (
            LockMode.WRITE if op.kind is OpKind.WRITE else LockMode.READ
        )
        # Quiesce the loop first: pending wake-ups (grant-queue churn,
        # victim aborts) must land before the decision snapshot, or the
        # snapshot and the request would see different lock tables.
        await settle()
        expected = None
        if self._needs_lock(session, op.item, mode):
            # The simulator's locking conditions, asked directly.
            expected = manager.protocol.decide(session.job, op.item, mode)
            self.checked += 1
        deadlocks_before = manager.stats.deadlocks
        if op.kind is OpKind.WRITE:
            coro = manager.write(session, op.item, f"{session.name}")
        else:
            coro = manager.read(session, op.item)
        task = asyncio.ensure_future(coro)
        await settle()
        if expected is None:
            return task if not task.done() else self._reap(task)

        if task.done():
            observed = "granted"
        elif session.state is SessionState.WAITING:
            observed = "parked"
        else:
            observed = "pending"
        if isinstance(expected, (Grant, AbortAndGrant)):
            if observed != "granted":
                waiter = manager._waiters.get(session)
                if waiter is not None and waiter.reason.startswith(
                    "order guard"
                ):
                    # Documented tightening: the service may defer a
                    # protocol-admissible read for serialization order.
                    self.guard_waits += 1
                    return task
                self.mismatches.append(
                    (session.name, op.item, mode, "expected grant",
                     observed)
                )
        else:
            assert isinstance(expected, Deny)
            if observed == "granted":
                # Legitimate fast path: the request parked, a wait cycle
                # was detected and resolved by victim abort, and the
                # freed lock was granted — all inside the settle window.
                # The same applies when a blocker died for another
                # reason: the deny was correct at decision time.
                resolved = (
                    manager.stats.deadlocks > deadlocks_before
                    or any(
                        not manager._by_job[b].state.live
                        for b in expected.blockers
                        if b in manager._by_job
                    )
                )
                if not resolved:
                    self.mismatches.append(
                        (session.name, op.item, mode, "expected deny",
                         "granted")
                    )
        return None if task.done() and self._reap(task) is None else task

    @staticmethod
    def _reap(task):
        try:
            task.result()
        except ServiceError:
            pass
        return None


async def drive(protocol: str, wseed: int, dseed: int):
    """Interleave sessions randomly; check every decision; finish all."""
    catalog = generate_taskset(WorkloadConfig(
        n_transactions=5, n_items=6, write_probability=0.5,
        rmw_probability=0.25, seed=wseed,
    ))
    manager = LockManager(catalog, protocol, ServiceConfig())
    driver = Driver(manager, dseed)
    rng = driver.rng

    async def commit_quietly(session):
        try:
            await manager.commit(session)
        except (TransactionAborted, ServiceError):
            pass

    active = {}   # session -> (remaining data ops, pending task or None)
    launched = 0
    TOTAL = 18
    while launched < TOTAL or active:
        # Reap finished tasks and drop dead/finished sessions.
        for session in list(active):
            ops, task = active[session]
            if task is not None and task.done():
                driver._reap(task)
                task = None
                active[session] = (ops, None)
            if task is None and not session.state.live:
                active.pop(session, None)

        ready = [s for s, (_, task) in active.items() if task is None
                 and s.state is SessionState.ACTIVE]
        choices = []
        if launched < TOTAL and len(active) < 5:
            choices.append("begin")
        choices.extend(["step"] * len(ready))
        if not choices:
            # Everyone parked (grant queue or commit gate): let it move.
            await asyncio.sleep(0.002)
            continue
        choice = rng.choice(choices)
        if choice == "begin":
            name = rng.choice([spec.name for spec in catalog])
            session = await manager.begin(name)
            ops = [op for op in catalog[name].operations
                   if op.kind is not OpKind.COMPUTE]
            active[session] = (ops, None)
            launched += 1
            continue
        session = rng.choice(ready)
        ops, _ = active[session]
        if not ops:
            # Commit runs as a task: it may park at the commit gate, and
            # the sessions it waits for still need driving.
            task = asyncio.ensure_future(commit_quietly(session))
            await settle()
            active[session] = (ops, task)
            continue
        op = ops[0]
        task = await driver.issue(session, op)
        if session not in active or not session.state.live:
            active.pop(session, None)   # aborted underneath us
            continue
        if task is not None and task.done():
            driver._reap(task)
            task = None
        active[session] = (ops[1:], task)

    assert driver.mismatches == [], driver.mismatches
    assert driver.checked > 0
    check_serializable(manager.history)
    return driver


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_service_decisions_match_protocol(protocol):
    """Across random interleavings, every immediate outcome matches the
    protocol's own decision (modulo the documented order guard)."""
    total_checked = 0
    for wseed, dseed in ((3, 1), (11, 2), (29, 3)):
        driver = run(drive(protocol, wseed, dseed))
        total_checked += driver.checked
    assert total_checked >= 30


def test_order_guard_only_tightens():
    """The guard may delay a Grant but never overrides a Deny: on items
    without live predecessors the service decision IS the protocol's."""
    async def body():
        catalog = generate_taskset(WorkloadConfig(
            n_transactions=4, n_items=5, write_probability=0.5, seed=7,
        ))
        manager = LockManager(catalog, "pcp-da")
        name = next(iter(spec.name for spec in catalog))
        session = await manager.begin(name)
        spec = session.job.spec
        for item in sorted(spec.access_set):
            mode = (LockMode.WRITE if item in spec.write_set
                    else LockMode.READ)
            direct = manager.protocol.decide(session.job, item, mode)
            serviced = manager._service_decide(session.job, item, mode)
            assert type(direct) is type(serviced)
            if isinstance(direct, Grant):
                assert serviced.rule == direct.rule

    run(body())


def test_grant_rules_recorded_match_trace():
    """Rules the protocol reported are what the job and trace recorded."""
    async def body():
        catalog = generate_taskset(WorkloadConfig(
            n_transactions=4, n_items=5, write_probability=0.4, seed=13,
        ))
        manager = LockManager(catalog, "pcp-da")
        name = next(iter(spec.name for spec in catalog))
        session = await manager.begin(name)
        for op in catalog[name].operations:
            if op.kind is OpKind.READ:
                await manager.read(session, op.item)
            elif op.kind is OpKind.WRITE:
                await manager.write(session, op.item, 1)
        rules = [rule for (_, _, _, rule) in session.job.grant_rules]
        granted = manager.trace.grants_for(session.name)
        assert [e.rule for e in granted] == rules
        await manager.commit(session)

    run(body())
