"""Differential battery, part 2: property-based cross-checking.

``SimConfig(debug_invariants=True)`` makes the simulator re-derive its
incremental scheduler state (ready heap, blocked set, active index,
ceiling index) from scratch after **every** event batch and raise on any
divergence.  Here hypothesis generates adversarial workloads and asserts,
for every protocol:

1. the debug run completes — i.e. the incremental state never diverged
   from the filter-per-event reference at any point of the run; and
2. the trace is byte-identical with and without the checks — i.e. the
   verification hook itself is observationally free.

Together with the golden traces (part 1) this is the standing proof that
the fast path cannot drift from the reference semantics unnoticed.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.simulator import SimConfig, Simulator
from repro.model.priorities import assign_by_order
from repro.model.spec import TransactionSpec, compute, read, write
from repro.protocols import make_protocol
from repro.trace.export import result_to_json

from tests.golden_traces import ALL_PROTOCOLS

_ITEMS = ["a", "b", "c", "d"]


@st.composite
def contended_tasksets(draw):
    """Small one-shot task sets biased toward lock contention."""
    n = draw(st.integers(min_value=2, max_value=5))
    specs = []
    for i in range(n):
        n_ops = draw(st.integers(min_value=1, max_value=4))
        ops = []
        used = set()
        for __ in range(n_ops):
            item = draw(st.sampled_from(_ITEMS))
            is_write = draw(st.booleans())
            if (item, is_write) in used:
                continue
            used.add((item, is_write))
            duration = draw(st.sampled_from([1.0, 2.0]))
            ops.append(write(item, duration) if is_write else read(item, duration))
        if draw(st.booleans()):
            ops.append(compute(draw(st.sampled_from([1.0, 2.0]))))
        if not ops:
            ops = [read(draw(st.sampled_from(_ITEMS)), 1.0)]
        offset = float(draw(st.integers(min_value=0, max_value=6)))
        specs.append(TransactionSpec(f"T{i + 1}", tuple(ops), offset=offset))
    return assign_by_order(specs)


_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_SETTINGS
@given(contended_tasksets(), st.sampled_from(ALL_PROTOCOLS))
def test_incremental_state_matches_reference_on_random_runs(taskset, protocol):
    fast = Simulator(
        taskset, make_protocol(protocol),
        SimConfig(deadlock_action="abort_lowest"),
    ).run()
    checked = Simulator(
        taskset, make_protocol(protocol),
        SimConfig(deadlock_action="abort_lowest", debug_invariants=True),
    ).run()
    assert result_to_json(fast) == result_to_json(checked)


@_SETTINGS
@given(contended_tasksets(), st.sampled_from(ALL_PROTOCOLS))
def test_kernel_path_matches_object_path_on_random_runs(taskset, protocol):
    """The array kernel (``kernel=True``) and the object reference path
    (``kernel=False``) must emit byte-identical traces on adversarial
    schedules — for table protocols this pins the integer engine to the
    object semantics; for fallback protocols both runs take the object
    path and the assertion is a no-op by construction."""
    fast = Simulator(
        taskset, make_protocol(protocol),
        SimConfig(deadlock_action="abort_lowest", kernel=True),
    ).run()
    reference = Simulator(
        taskset, make_protocol(protocol),
        SimConfig(deadlock_action="abort_lowest", kernel=False),
    ).run()
    assert result_to_json(fast) == result_to_json(reference)


@_SETTINGS
@given(contended_tasksets())
def test_invariants_hold_under_halting_deadlocks(taskset):
    """The weakened protocol can deadlock mid-run; the incremental state
    must still match the reference right up to the halt."""
    config = SimConfig(deadlock_action="halt", debug_invariants=True)
    plain = SimConfig(deadlock_action="halt")
    checked = Simulator(taskset, make_protocol("weak-pcp-da"), config).run()
    fast = Simulator(taskset, make_protocol("weak-pcp-da"), plain).run()
    assert result_to_json(fast) == result_to_json(checked)
