"""Unit tests for private workspaces (repro.engine.workspace)."""

from repro.engine.workspace import Workspace


class TestWorkspace:
    def test_buffer_write_and_lookup(self):
        ws = Workspace()
        ws.buffer_write("x", "v1")
        assert ws.has_write("x")
        assert ws.written_value("x") == "v1"

    def test_latest_write_wins(self):
        ws = Workspace()
        ws.buffer_write("x", "v1")
        ws.buffer_write("x", "v2")
        assert ws.pending_writes == {"x": "v2"}

    def test_pending_writes_is_a_copy(self):
        ws = Workspace()
        ws.buffer_write("x", "v")
        snapshot = ws.pending_writes
        snapshot["x"] = "mutated"
        assert ws.written_value("x") == "v"

    def test_note_read_first_version_sticks(self):
        ws = Workspace()
        ws.note_read("x", 3, 1.0)
        ws.note_read("x", 9, 2.0)  # re-read under the same lock
        assert len(ws.reads) == 1
        assert ws.reads[0].version_seq == 3

    def test_own_write_read_recorded_with_none_version(self):
        ws = Workspace()
        ws.note_read("x", None, 1.0)
        assert ws.reads[0].version_seq is None

    def test_discard_clears_everything(self):
        ws = Workspace()
        ws.buffer_write("x", "v")
        ws.note_read("y", 0, 1.0)
        ws.discard()
        assert not ws.has_write("x")
        assert ws.reads == ()
        assert ws.read_items() == ()
