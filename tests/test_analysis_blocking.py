"""Unit tests for BTS_i / B_i (repro.analysis.blocking) — Section 9."""

import pytest

from repro.analysis.blocking import (
    blocking_term,
    blocking_terms,
    bts,
    bts_original_pcp,
    bts_pcp_da,
    bts_rw_pcp,
)
from repro.exceptions import AnalysisError
from repro.model.priorities import assign_by_order
from repro.model.spec import TransactionSpec, compute, read, write
from repro.workloads.examples import example3_taskset, example4_taskset


class TestBTSExample4:
    """Hand-checked blocking sets for Example 4's access pattern."""

    @pytest.fixture
    def ts(self):
        return example4_taskset()

    def test_pcp_da_bts(self, ts):
        # T4 reads y with Wceil(y) = P2: it can block T1? Wceil(y)=3 < P1=4
        # -> no.  It blocks T2 (Wceil(y) >= P2) and T3 (>= P3).
        assert bts_pcp_da(ts, "T1") == frozenset()
        assert bts_pcp_da(ts, "T2") == frozenset({"T4"})
        assert bts_pcp_da(ts, "T3") == frozenset({"T4"})
        assert bts_pcp_da(ts, "T4") == frozenset()

    def test_rw_pcp_bts_is_superset(self, ts):
        # T4 also *writes* x with Aceil(x) = P1: under RW-PCP T4 can block
        # even T1.  T3 writes z (Aceil(z) = P3): it can block nobody above
        # P3; T3 reads z too, same ceiling.
        assert bts_rw_pcp(ts, "T1") == frozenset({"T4"})
        assert bts_rw_pcp(ts, "T2") == frozenset({"T4"})
        assert bts_rw_pcp(ts, "T3") == frozenset({"T4"})
        for name in ts.names:
            assert bts_pcp_da(ts, name) <= bts_rw_pcp(ts, name)

    def test_original_pcp_bts_is_largest(self, ts):
        for name in ts.names:
            assert bts_rw_pcp(ts, name) <= bts_original_pcp(ts, name)
        # Only T4 touches items with Aceil >= P2 (x: Aceil=P1, y: Aceil=P2);
        # T3's z has Aceil = P3 < P2 and drops out.
        assert bts_original_pcp(ts, "T2") == frozenset({"T4"})
        # At T3's level, T4's y (Aceil = P2 >= P3) still counts.
        assert bts_original_pcp(ts, "T3") == frozenset({"T4"})

    def test_blocking_terms_example4(self, ts):
        # C_3 = 2, C_4 = 5.
        b_da = blocking_terms(ts, "pcp-da")
        b_rw = blocking_terms(ts, "rw-pcp")
        assert b_da == {"T1": 0.0, "T2": 5.0, "T3": 5.0, "T4": 0.0}
        assert b_rw == {"T1": 5.0, "T2": 5.0, "T3": 5.0, "T4": 0.0}


class TestBTSExample3:
    def test_paper_claim_write_only_blocker_drops_out(self):
        """Example 3: T2 only *writes* x and y.  Under RW-PCP it can block
        T1 (Aceil >= P1); under PCP-DA it cannot block anyone — exactly
        the B_i reduction Section 9 highlights."""
        ts = example3_taskset()
        assert bts_rw_pcp(ts, "T1") == frozenset({"T2"})
        assert bts_pcp_da(ts, "T1") == frozenset()
        assert blocking_term(ts, "T1", "rw-pcp") == 5.0
        assert blocking_term(ts, "T1", "pcp-da") == 0.0


class TestBTSGeneric:
    def test_dispatcher_and_unknown_protocol(self):
        ts = example4_taskset()
        assert bts(ts, "T2", "pcp-da") == bts_pcp_da(ts, "T2")
        with pytest.raises(AnalysisError):
            bts(ts, "T2", "nonsense")

    def test_lowest_priority_transaction_never_blocked(self):
        ts = example4_taskset()
        for protocol in ("pcp-da", "rw-pcp", "pcp"):
            assert bts(ts, "T4", protocol) == frozenset()

    def test_subset_property_on_random_sets(self):
        from repro.workloads.generator import WorkloadConfig, generate_taskset

        for seed in range(20):
            ts = generate_taskset(
                WorkloadConfig(n_transactions=6, n_items=8, seed=seed,
                               write_probability=0.4)
            )
            for name in ts.names:
                da = bts_pcp_da(ts, name)
                rw = bts_rw_pcp(ts, name)
                pcp = bts_original_pcp(ts, name)
                assert da <= rw <= pcp
                assert blocking_term(ts, name, "pcp-da") <= blocking_term(
                    ts, name, "rw-pcp"
                )
