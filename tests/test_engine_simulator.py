"""Behavioural tests of the discrete-event simulator itself.

These tests use PCP-DA or PIP-2PL as convenient protocols but target
*engine* semantics: preemption, charging, periodic releases, horizons,
commit-time write-back, deadline accounting, and determinism.
"""

import pytest

from repro.core.pcp_da import PCPDA
from repro.engine.job import JobState
from repro.engine.simulator import SimConfig, Simulator
from repro.exceptions import SpecificationError
from repro.model.priorities import assign_by_order
from repro.model.spec import TaskSet, TransactionSpec, compute, read, write
from repro.protocols import make_protocol
from repro.trace.recorder import SchedEventKind


def _oneshot(name, ops, offset=0.0):
    return TransactionSpec(name, ops, offset=offset)


class TestBasicExecution:
    def test_single_transaction_runs_to_commit(self):
        ts = assign_by_order([_oneshot("T", (read("x"), compute(2.0)))])
        result = Simulator(ts, PCPDA()).run()
        job = result.job("T#0")
        assert job.state is JobState.COMMITTED
        assert job.finish_time == 3.0
        assert result.history.commit_order() == ("T#0",)

    def test_preemption_by_higher_priority_arrival(self):
        high = _oneshot("H", (compute(1.0),), offset=1.0)
        low = _oneshot("L", (compute(4.0),), offset=0.0)
        ts = assign_by_order([high, low])
        result = Simulator(ts, PCPDA()).run()
        assert result.job("H#0").finish_time == 2.0
        assert result.job("L#0").finish_time == 5.0
        assert result.job("L#0").preemptions == 1
        preempts = [
            e for e in result.trace.sched_events
            if e.kind is SchedEventKind.PREEMPT
        ]
        assert preempts and preempts[0].job == "L#0" and preempts[0].other == "H#0"

    def test_deferred_writes_install_only_at_commit(self):
        writer = _oneshot("W", (write("x", 1.0), compute(2.0)))
        ts = assign_by_order([writer])
        sim = Simulator(ts, PCPDA())
        result = sim.run()
        installs = result.history.installs()
        assert len(installs) == 1
        assert installs[0].time == 3.0  # at commit, not at t=1

    def test_in_place_writes_install_at_operation(self):
        writer = _oneshot("W", (write("x", 1.0), compute(2.0)))
        ts = assign_by_order([writer])
        result = Simulator(ts, make_protocol("rw-pcp")).run()
        installs = result.history.installs()
        assert len(installs) == 1
        assert installs[0].time == 1.0  # at the write operation

    def test_read_binds_to_committed_version(self):
        # L write-locks x and is preempted; H reads x and must see the
        # initial version, not L's workspace value.
        low = _oneshot("L", (write("x", 1.0), compute(3.0)), offset=0.0)
        high = _oneshot("H", (read("x", 1.0),), offset=2.0)
        ts = assign_by_order([high, low])
        result = Simulator(ts, PCPDA()).run()
        reads = [e for e in result.history.committed_reads() if e.job == "H#0"]
        assert reads[0].version_seq == 0  # the initial version

    def test_own_write_then_read_uses_workspace(self):
        t = _oneshot("T", (write("x", 1.0), read("x", 1.0)))
        ts = assign_by_order([t])
        result = Simulator(ts, PCPDA()).run()
        # The read of its own deferred write is not a history event.
        assert result.history.committed_reads() == []
        assert result.job("T#0").data_read == set()

    def test_zero_duration_operation(self):
        t = _oneshot("T", (read("x", 0.0), compute(1.0)))
        ts = assign_by_order([t])
        result = Simulator(ts, PCPDA()).run()
        assert result.job("T#0").finish_time == 1.0


class TestPeriodicExecution:
    def test_hyperperiod_default_horizon(self):
        a = TransactionSpec("A", (compute(1.0),), period=4.0)
        b = TransactionSpec("B", (compute(1.0),), period=6.0)
        ts = assign_by_order([a, b])
        result = Simulator(ts, PCPDA()).run()
        assert result.end_time <= 12.0 + 1e-9
        assert len(result.jobs_of("A")) == 3
        assert len(result.jobs_of("B")) == 2

    def test_max_instances_caps_releases(self):
        a = TransactionSpec("A", (compute(1.0),), period=4.0)
        ts = assign_by_order([a])
        result = Simulator(
            ts, PCPDA(), SimConfig(horizon=100.0, max_instances=3)
        ).run()
        assert len(result.jobs_of("A")) == 3

    def test_fractional_period_requires_horizon(self):
        a = TransactionSpec("A", (compute(1.0),), period=2.5)
        ts = assign_by_order([a])
        with pytest.raises(SpecificationError):
            Simulator(ts, PCPDA())
        Simulator(ts, PCPDA(), SimConfig(horizon=5.0))  # fine with horizon

    def test_deadline_miss_recorded(self):
        # B's first job is delayed past its deadline by A's load.
        a = TransactionSpec("A", (compute(3.0),), period=4.0)
        b = TransactionSpec("B", (compute(2.0),), period=4.0, deadline=3.0)
        ts = assign_by_order([a, b])
        result = Simulator(ts, PCPDA(), SimConfig(horizon=8.0)).run()
        b0 = result.job("B#0")
        assert b0.missed_deadline
        assert b0.finish_time == 8.0  # A#0 0-3, B#0 3-4, A#1 4-7, B#0 7-8
        misses = [
            e for e in result.trace.sched_events if e.kind is SchedEventKind.MISS
        ]
        assert any(e.job == "B#0" for e in misses)

    def test_unfinished_job_counts_as_miss_without_trace_event(self):
        a = TransactionSpec("A", (compute(3.0),), period=4.0, deadline=2.0)
        ts = assign_by_order([a])
        result = Simulator(ts, PCPDA(), SimConfig(horizon=2.0)).run()
        a0 = result.job("A#0")
        assert a0.state is not JobState.COMMITTED
        assert a0.missed_deadline  # never finished: a miss by definition

    def test_overrunning_job_continues_past_deadline(self):
        a = TransactionSpec("A", (compute(3.5),), period=4.0, deadline=3.0)
        ts = assign_by_order([a])
        result = Simulator(ts, PCPDA(), SimConfig(horizon=4.0)).run()
        a0 = result.job("A#0")
        assert a0.missed_deadline
        assert a0.state is JobState.COMMITTED  # record-and-continue policy
        assert a0.finish_time == 3.5


class TestHorizon:
    def test_unfinished_jobs_survive_the_horizon(self):
        a = TransactionSpec("A", (compute(10.0),), period=20.0)
        ts = assign_by_order([a])
        result = Simulator(ts, PCPDA(), SimConfig(horizon=5.0)).run()
        assert result.job("A#0").state is not JobState.COMMITTED
        assert result.end_time == 5.0

    def test_arrivals_at_horizon_suppressed(self):
        a = TransactionSpec("A", (compute(1.0),), period=5.0)
        ts = assign_by_order([a])
        result = Simulator(ts, PCPDA(), SimConfig(horizon=10.0)).run()
        assert len(result.jobs_of("A")) == 2  # t=0 and t=5; not t=10


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        from repro.workloads.generator import WorkloadConfig, generate_taskset

        ts = generate_taskset(WorkloadConfig(n_transactions=4, seed=7))
        config = SimConfig(horizon=200.0)
        r1 = Simulator(ts, PCPDA(), config).run()
        r2 = Simulator(ts, PCPDA(), config).run()
        events1 = [(e.time, e.kind, e.job) for e in r1.trace.sched_events]
        events2 = [(e.time, e.kind, e.job) for e in r2.trace.sched_events]
        assert events1 == events2
        assert [
            (e.time, e.job, e.item, e.outcome) for e in r1.trace.lock_events
        ] == [
            (e.time, e.job, e.item, e.outcome) for e in r2.trace.lock_events
        ]


class TestResultAccessors:
    def test_job_lookup_and_missing(self):
        ts = assign_by_order([_oneshot("T", (compute(1.0),))])
        result = Simulator(ts, PCPDA()).run()
        assert result.job("T#0").spec.name == "T"
        with pytest.raises(KeyError):
            result.job("nope#0")

    def test_committed_and_missed_views(self):
        ts = assign_by_order([_oneshot("T", (compute(1.0),))])
        result = Simulator(ts, PCPDA()).run()
        assert [j.name for j in result.committed_jobs] == ["T#0"]
        assert result.missed_jobs == ()
