"""Multi-shard TCP soak battery (``sharding_soak`` marker, not tier-1).

The ISSUE-6 acceptance scenario end to end over real sockets: a
``LockServer`` fronting a 4-shard :class:`ShardedLockManager` on a
loopback TCP port, concurrent loadgen clients each on their own
connection, and the client-side serializability replay as the verdict.

Run with ``make verify-sharding SOAK=1`` (or
``pytest -m sharding_soak --override-ini 'addopts=-q'``).
"""

import asyncio

import pytest

from repro.service import ServiceConfig, ShardedLockManager
from repro.service.client import connect_tcp
from repro.service.loadgen import LoadgenConfig, run_loadgen
from repro.service.server import LockServer
from repro.workloads.generator import WorkloadConfig, generate_taskset

pytestmark = pytest.mark.sharding_soak


def serve_and_load(workload, loadcfg, *, shards=4, partitioner="hash",
                   protocol="pcp-da"):
    """Start a sharded TCP server, run the loadgen, return the report."""

    async def body():
        catalog = generate_taskset(workload)
        manager = ShardedLockManager(
            catalog, protocol, ServiceConfig(),
            shards=shards, partitioner=partitioner,
        )
        server = LockServer(manager, port=0)
        await server.start()
        try:
            async def connect():
                return await connect_tcp("127.0.0.1", server.port)

            return await run_loadgen(loadcfg, connect)
        finally:
            await server.close()

    return asyncio.run(body())


class TestShardedAcceptanceSoak:
    def test_four_shards_over_tcp_serializable_and_complete(self):
        report = serve_and_load(
            WorkloadConfig(
                n_transactions=8, n_items=10, write_probability=0.5, seed=11,
            ),
            LoadgenConfig(clients=24, transactions_per_client=8, seed=5),
        )
        assert report.serializable, report.violation
        assert report.completed == 24 * 8
        assert report.forced_aborts == 0
        assert report.transport_errors == 0
        doc = report.stats_doc
        assert doc["shard_count"] == 4
        assert len(doc["shards"]) == 4
        assert doc["coordinator"]["cross_shard_commits"] > 0
        text = report.render()
        assert "serializability: OK" in text
        assert "per-shard breakdown:" in text

    def test_range_partitioned_deployment_over_tcp(self):
        report = serve_and_load(
            WorkloadConfig(
                n_transactions=6, n_items=12, write_probability=0.5, seed=3,
            ),
            LoadgenConfig(clients=16, transactions_per_client=6, seed=7),
            partitioner="range",
        )
        assert report.serializable, report.violation
        assert report.completed == 16 * 6

    def test_topology_is_served_over_tcp(self):
        async def body():
            catalog = generate_taskset(WorkloadConfig(
                n_transactions=4, n_items=8, write_probability=0.5, seed=1,
            ))
            manager = ShardedLockManager(
                catalog, "pcp-da", ServiceConfig(), shards=4,
            )
            server = LockServer(manager, port=0)
            await server.start()
            try:
                client = await connect_tcp("127.0.0.1", server.port)
                async with client:
                    assert (await client.ping())["shards"] == 4
                    topology = await client.topology()
                    assert topology["shards"] == 4
                    routed = [item for items in topology["assignment"].values()
                              for item in items]
                    assert sorted(routed) == sorted(catalog.items)
            finally:
                await server.close()

        asyncio.run(body())
