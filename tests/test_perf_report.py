"""Tests for the standing perf-regression harness (benchmarks/perf_report.py).

The smoke path is wired into ``make verify``, so these tests keep the
harness itself honest: the document it emits validates against the
schema, the event counts are deterministic, and the validator actually
rejects malformed documents (a validator that accepts everything would
let the ledger rot silently).
"""

import copy
import json
import sys
import pathlib

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "benchmarks"))

import perf_report  # noqa: E402  (path set up above)


@pytest.fixture(scope="module")
def smoke_doc():
    return perf_report.build_document(smoke=True)


class TestSmokeDocument:
    def test_validates_against_schema(self, smoke_doc):
        perf_report.validate_bench_document(smoke_doc)

    def test_covers_every_benchmarked_protocol(self, smoke_doc):
        assert [r["protocol"] for r in smoke_doc["results"]] == list(
            perf_report.PROTOCOLS
        )

    def test_event_counts_are_deterministic(self, smoke_doc):
        again = perf_report.measure(smoke=True)
        assert [r["events"] for r in smoke_doc["results"]] == [
            r["events"] for r in again
        ]

    def test_renders_a_table_with_totals(self, smoke_doc):
        table = perf_report.render_table(smoke_doc)
        assert "TOTAL" in table
        for protocol in perf_report.PROTOCOLS:
            assert protocol in table

    def test_round_trips_through_json(self, smoke_doc):
        perf_report.validate_bench_document(
            json.loads(json.dumps(smoke_doc))
        )


class TestValidatorRejects:
    def _corrupt(self, doc, mutate):
        bad = copy.deepcopy(doc)
        mutate(bad)
        with pytest.raises(ValueError):
            perf_report.validate_bench_document(bad)

    def test_wrong_schema(self, smoke_doc):
        self._corrupt(smoke_doc, lambda d: d.update(schema="other/9"))

    def test_unknown_mode(self, smoke_doc):
        self._corrupt(smoke_doc, lambda d: d.update(mode="fast"))

    def test_empty_results(self, smoke_doc):
        self._corrupt(smoke_doc, lambda d: d.update(results=[]))

    def test_missing_row_field(self, smoke_doc):
        self._corrupt(smoke_doc, lambda d: d["results"][0].pop("events"))

    def test_non_numeric_wall(self, smoke_doc):
        self._corrupt(
            smoke_doc, lambda d: d["results"][0].update(wall_s="quick")
        )

    def test_nonpositive_events(self, smoke_doc):
        self._corrupt(smoke_doc, lambda d: d["results"][0].update(events=0))

    def test_total_mismatch(self, smoke_doc):
        self._corrupt(
            smoke_doc, lambda d: d["totals"].update(events=1)
        )

    def test_missing_totals(self, smoke_doc):
        self._corrupt(smoke_doc, lambda d: d.pop("totals"))


class TestCli:
    def test_smoke_run_writes_valid_file(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert perf_report.main(["--smoke", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        perf_report.validate_bench_document(doc)
        assert doc["mode"] == "smoke"
        captured = capsys.readouterr().out
        assert "TOTAL" in captured
        assert str(out) in captured

    def test_default_out_path_is_dated(self):
        assert str(perf_report.default_out_path(False)).startswith("BENCH_")
        assert "smoke" in str(perf_report.default_out_path(True))


REPO_ROOT = pathlib.Path(__file__).parent.parent
LEDGER_FILES = sorted(REPO_ROOT.glob("BENCH_*.json"))


class TestCheckedInLedger:
    """Every BENCH_*.json committed at the repo root must validate.

    The ledger is what perf PRs are judged against; a malformed document
    would silently break the comparison, so the schema gate runs over the
    whole checked-in set on every tier-1 run.
    """

    def test_ledger_is_not_empty(self):
        assert LEDGER_FILES, "no BENCH_*.json checked in at the repo root"

    @pytest.mark.parametrize(
        "path", LEDGER_FILES, ids=[p.name for p in LEDGER_FILES]
    )
    def test_checked_in_document_validates(self, path):
        doc = json.loads(path.read_text())
        perf_report.validate_bench_document(doc)

    @pytest.mark.parametrize(
        "path", LEDGER_FILES, ids=[p.name for p in LEDGER_FILES]
    )
    def test_checked_in_document_is_dated(self, path):
        # BENCH_YYYY-MM-DD.json (what `make bench` writes), or
        # BENCH_<tag>_YYYY-MM-DD.json for tagged ledgers such as the
        # stress harness's BENCH_stress_<date>.json (`make stress`).
        stem = path.stem
        assert stem.startswith("BENCH_")
        date = stem[len("BENCH_"):].rsplit("_", 1)[-1]
        parts = date.split("-")
        assert len(parts) == 3 and all(p.isdigit() for p in parts), (
            f"{path.name}: expected BENCH_[tag_]YYYY-MM-DD.json"
        )
