"""Property-based tests (hypothesis) of the paper's theorems on random
workloads.

Each random task set is simulated under PCP-DA (and selected baselines) and
the run is checked against Theorems 1-3 plus the no-restart guarantee.
These are the strongest falsifiers of our reconstruction of the locking
conditions: thousands of adversarial schedules, every one required to be
serializable, deadlock-free, and single-blocking.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.simulator import SimConfig, Simulator
from repro.model.priorities import assign_by_order
from repro.model.spec import TaskSet, TransactionSpec, compute, read, write
from repro.protocols import make_protocol
from repro.verify import (
    assert_deadlock_free,
    assert_serializable,
    assert_single_blocking,
    verify_pcp_da_run,
)

_ITEMS = ["a", "b", "c", "d"]


@st.composite
def one_shot_tasksets(draw):
    """Small one-shot task sets with adversarial arrival offsets.

    One-shot (aperiodic) transactions with integer offsets in a tight
    window maximise lock contention and interleaving diversity per
    simulated unit of time.
    """
    n = draw(st.integers(min_value=2, max_value=5))
    specs = []
    for i in range(n):
        n_ops = draw(st.integers(min_value=1, max_value=4))
        ops = []
        used = set()
        for __ in range(n_ops):
            item = draw(st.sampled_from(_ITEMS))
            is_write = draw(st.booleans())
            if (item, is_write) in used:
                continue
            used.add((item, is_write))
            duration = draw(st.sampled_from([1.0, 2.0]))
            ops.append(write(item, duration) if is_write else read(item, duration))
        if draw(st.booleans()):
            ops.append(compute(draw(st.sampled_from([1.0, 2.0]))))
        if not ops:
            ops = [read(draw(st.sampled_from(_ITEMS)), 1.0)]
        offset = float(draw(st.integers(min_value=0, max_value=6)))
        specs.append(TransactionSpec(f"T{i + 1}", tuple(ops), offset=offset))
    return assign_by_order(specs)


_SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_SETTINGS
@given(one_shot_tasksets())
def test_pcp_da_theorems_hold(taskset):
    """Theorems 1-3 + no-restart on every random one-shot workload."""
    result = Simulator(taskset, make_protocol("pcp-da")).run()
    verify_pcp_da_run(result)
    # One-shot workloads always quiesce: every job commits.
    from repro.verify import assert_all_committed, assert_value_replay_consistent

    assert_all_committed(result)
    # Final-state serializability: the strongest oracle we have.
    assert_value_replay_consistent(result)


@_SETTINGS
@given(one_shot_tasksets())
def test_rw_pcp_theorems_hold(taskset):
    result = Simulator(taskset, make_protocol("rw-pcp")).run()
    assert_deadlock_free(result)
    assert_single_blocking(result)
    assert_serializable(result)
    assert result.aborted_restarts == 0


@_SETTINGS
@given(one_shot_tasksets())
def test_original_pcp_theorems_hold(taskset):
    result = Simulator(taskset, make_protocol("pcp")).run()
    assert_deadlock_free(result)
    assert_single_blocking(result)
    assert_serializable(result)


@_SETTINGS
@given(one_shot_tasksets())
def test_ccp_serializable_and_deadlock_free(taskset):
    result = Simulator(taskset, make_protocol("ccp")).run()
    assert_deadlock_free(result)
    assert_serializable(result)
    assert result.aborted_restarts == 0


@_SETTINGS
@given(one_shot_tasksets())
def test_2pl_hp_serializable_and_deadlock_free(taskset):
    result = Simulator(taskset, make_protocol("2pl-hp")).run()
    assert_deadlock_free(result)
    assert_serializable(result)


@_SETTINGS
@given(one_shot_tasksets())
def test_occ_bc_serializable_and_never_blocks(taskset):
    from repro.verify import assert_value_replay_consistent

    result = Simulator(taskset, make_protocol("occ-bc")).run()
    assert_deadlock_free(result)
    assert_serializable(result)
    assert_value_replay_consistent(result)
    assert all(not j.block_intervals for j in result.jobs)


@_SETTINGS
@given(one_shot_tasksets())
def test_rw_pcp_abort_serializable_and_deadlock_free(taskset):
    result = Simulator(taskset, make_protocol("rw-pcp-abort")).run()
    assert_deadlock_free(result)
    assert_serializable(result)


@_SETTINGS
@given(one_shot_tasksets())
def test_pcp_da_firm_deadline_mode_serializable(taskset):
    """Firm-deadline drops (on_miss='abort') never break serializability
    or deadlock freedom, even under tight artificial deadlines."""
    from repro.model.spec import TaskSet, TransactionSpec

    tight = TaskSet([
        TransactionSpec(
            s.name, s.operations, priority=s.priority,
            period=max(4.0, s.execution_time + 1.0),
            deadline=max(2.0, s.execution_time),
            offset=s.offset,
        )
        for s in taskset
    ])
    result = Simulator(
        tight, make_protocol("pcp-da"),
        SimConfig(on_miss="abort", horizon=40.0),
    ).run()
    assert_deadlock_free(result)
    assert_serializable(result)


@_SETTINGS
@given(one_shot_tasksets())
def test_pip_2pl_serializable_with_abort_resolution(taskset):
    result = Simulator(
        taskset, make_protocol("pip-2pl"),
        SimConfig(deadlock_action="abort_lowest"),
    ).run()
    assert_serializable(result)


def test_pcp_da_blocks_less_than_rw_pcp_in_aggregate():
    """Section 5: 'transaction blocking that happens under PCP-DA must
    happen under RW-PCP'.

    That statement compares decisions on identical execution prefixes;
    once the schedules diverge, individual runs can reorder (a scheduling
    anomaly: PCP-DA may reach a conflicting read lock that RW-PCP's
    ceiling suppressed), so a per-run inequality does not hold.  The
    robust consequence is aggregate: over a corpus of random workloads,
    PCP-DA accumulates at most as much blocking as RW-PCP and almost never
    more on a single workload.
    """
    import random

    from repro.model.spec import TaskSet

    rng = random.Random(2024)
    total_da = total_rw = 0.0
    da_worse = 0
    n_workloads = 150
    for __ in range(n_workloads):
        n = rng.randint(2, 5)
        specs = []
        for i in range(n):
            ops = []
            used = set()
            for ___ in range(rng.randint(1, 4)):
                item = rng.choice(_ITEMS)
                is_write = rng.random() < 0.5
                if (item, is_write) in used:
                    continue
                used.add((item, is_write))
                duration = rng.choice([1.0, 2.0])
                ops.append(
                    write(item, duration) if is_write else read(item, duration)
                )
            if not ops:
                ops = [read(rng.choice(_ITEMS), 1.0)]
            specs.append(
                TransactionSpec(
                    f"T{i + 1}", tuple(ops), offset=float(rng.randint(0, 6))
                )
            )
        taskset = assign_by_order(specs)
        da = Simulator(taskset, make_protocol("pcp-da")).run()
        rw = Simulator(taskset, make_protocol("rw-pcp")).run()
        da_blocking = sum(j.total_blocking_time() for j in da.jobs)
        rw_blocking = sum(j.total_blocking_time() for j in rw.jobs)
        total_da += da_blocking
        total_rw += rw_blocking
        if da_blocking > rw_blocking + 1e-9:
            da_worse += 1
    assert total_da <= total_rw + 1e-9
    assert da_worse <= n_workloads * 0.05
