"""Kernel force-opt-out coverage (ISSUE satellite: fallback parity).

Two protocols opt out of the array kernel on purpose — ``rw-pcp-abort``
(its abort branch diverges from the RW-PCP table it would inherit) and
``pcp-da-checked`` (routing decisions around its ``decide()`` would skip
the lemma assertions).  ``SimConfig(kernel=True)`` must then fall back
to the object path *silently and identically*: these tests pin

* that ``compile_table()`` / ``build_kernel()`` actually decline;
* byte-identical traces for ``kernel=True`` (fallback) vs
  ``kernel=False`` (explicit object path) across the golden corpus and
  the stress harness's seeded workloads;
* that ``pcp-da-checked`` remains observationally identical to plain
  ``pcp-da`` (the assertions must never change a decision).
"""

import dataclasses
import json

import pytest

from repro.engine.kernel import build_kernel
from repro.engine.lock_table import LockTable
from repro.engine.simulator import SimConfig, Simulator
from repro.protocols import make_protocol
from repro.trace.export import result_to_json
from repro.verify.stress import StressSpec, build_taskset

from tests.golden_traces import CORPUS

OPT_OUT_PROTOCOLS = ("rw-pcp-abort", "pcp-da-checked")

#: Golden-corpus cases replayed under each opt-out protocol (seeded
#: random workloads with deadlock resolution — the richest decision mix).
_CORPUS_CASES = [
    (name, build, config)
    for name, build, _proto, config in CORPUS
    if name.startswith("workload-s")
][:6]


def _bound(protocol_name):
    """A protocol bound to a small task set, as compile_table requires."""
    from repro.workloads.examples import example1_taskset

    protocol = make_protocol(protocol_name)
    protocol.bind(example1_taskset(), LockTable())
    return protocol


class TestOptOutDeclared:
    @pytest.mark.parametrize("protocol", OPT_OUT_PROTOCOLS)
    def test_compile_table_returns_none(self, protocol):
        assert _bound(protocol).compile_table() is None

    @pytest.mark.parametrize("protocol", OPT_OUT_PROTOCOLS)
    def test_build_kernel_declines(self, protocol):
        assert build_kernel(_bound(protocol), LockTable()) is None

    def test_base_protocol_does_compile(self):
        # the control: plain pcp-da takes the kernel path, so the
        # fallback cases below genuinely exercise a different route
        assert _bound("pcp-da").compile_table() is not None


def _run(build, protocol, config, *, kernel):
    config = dataclasses.replace(config or SimConfig(), kernel=kernel)
    result = Simulator(build(), make_protocol(protocol), config).run()
    return result_to_json(result)


class TestFallbackByteIdentity:
    @pytest.mark.parametrize("protocol", OPT_OUT_PROTOCOLS)
    @pytest.mark.parametrize(
        "name,build,config", _CORPUS_CASES,
        ids=[c[0] for c in _CORPUS_CASES],
    )
    def test_golden_corpus_cases(self, protocol, name, build, config):
        assert (
            _run(build, protocol, config, kernel=True)
            == _run(build, protocol, config, kernel=False)
        )

    @pytest.mark.parametrize("protocol", OPT_OUT_PROTOCOLS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_stress_workloads(self, protocol, seed):
        spec = StressSpec(seed=seed, transactions=60)
        taskset = build_taskset(spec)
        payloads = [
            result_to_json(Simulator(
                taskset, make_protocol(protocol), SimConfig(kernel=kernel)
            ).run())
            for kernel in (True, False)
        ]
        assert payloads[0] == payloads[1]


class TestCheckedEquivalence:
    """pcp-da-checked = pcp-da + assertions, never different decisions."""

    @pytest.mark.parametrize(
        "name,build,config", _CORPUS_CASES,
        ids=[c[0] for c in _CORPUS_CASES],
    )
    def test_matches_plain_pcp_da(self, name, build, config):
        # the export embeds the protocol's registry name; everything
        # else — every decision, segment, and sysceil sample — must match
        checked = json.loads(_run(build, "pcp-da-checked", config, kernel=True))
        plain = json.loads(_run(build, "pcp-da", config, kernel=False))
        assert checked.pop("protocol") == "pcp-da-checked"
        assert plain.pop("protocol") == "pcp-da"
        assert checked == plain
