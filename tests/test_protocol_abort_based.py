"""Behavioural tests for the abort-based protocols: OCC-BC and RW-PCP-A."""

import pytest

from repro.engine.job import JobState
from repro.engine.simulator import SimConfig, Simulator
from repro.model.priorities import assign_by_order
from repro.model.spec import TransactionSpec, compute, read, write
from repro.protocols import make_protocol
from repro.verify import assert_deadlock_free, assert_serializable
from tests.conftest import run


def _ts(*specs):
    return assign_by_order(list(specs))


class TestOCCBroadcastCommit:
    def test_nothing_ever_blocks(self):
        ts = _ts(
            TransactionSpec("H", (read("x", 1.0), write("y", 1.0)), offset=1.0),
            TransactionSpec("L", (write("x", 1.0), read("y", 2.0)), offset=0.0),
        )
        result = run(ts, "occ-bc")
        assert all(not j.block_intervals for j in result.jobs)

    def test_committing_writer_restarts_conflicting_reader(self):
        # L reads x early; H writes x and commits while L is still active:
        # broadcast commit restarts L.
        ts = _ts(
            TransactionSpec("H", (write("x", 1.0),), offset=1.0),
            TransactionSpec("L", (read("x", 1.0), compute(3.0)), offset=0.0),
        )
        result = run(ts, "occ-bc")
        l_job = result.job("L#0")
        assert l_job.restarts == 1
        # L re-executes from scratch after H's commit at 2: 4 more units.
        assert l_job.finish_time == 6.0
        assert_serializable(result)

    def test_reader_that_committed_first_is_safe(self):
        ts = _ts(
            TransactionSpec("H", (write("x", 1.0),), offset=2.0),
            TransactionSpec("L", (read("x", 1.0),), offset=0.0),
        )
        result = run(ts, "occ-bc")
        assert result.job("L#0").restarts == 0
        assert result.aborted_restarts == 0

    def test_restarted_reader_sees_new_version(self):
        ts = _ts(
            TransactionSpec("H", (write("x", 1.0),), offset=1.0),
            TransactionSpec("L", (read("x", 1.0), compute(2.0)), offset=0.0),
        )
        result = run(ts, "occ-bc")
        reads = [e for e in result.history.committed_reads() if e.job == "L#0"]
        assert len(reads) == 1
        assert reads[0].version_seq > 0  # H's installed version

    def test_blind_writers_never_conflict(self):
        ts = _ts(
            TransactionSpec("H", (write("x", 1.0),), offset=1.0),
            TransactionSpec("L", (write("x", 1.0), compute(2.0)), offset=0.0),
        )
        result = run(ts, "occ-bc")
        assert result.aborted_restarts == 0
        assert_serializable(result)

    def test_priority_inversion_free_but_wasteful(self):
        """The paper's Section 2 trade-off: a low-priority transaction can
        be restarted again and again by committing writers."""
        ts = _ts(
            TransactionSpec(
                "H", (write("x", 1.0),), period=4.0, offset=1.0
            ),
            TransactionSpec("L", (read("x", 1.0), compute(4.0)), offset=0.0),
        )
        result = run(ts, "occ-bc", SimConfig(horizon=16.0))
        assert result.job("L#0").restarts >= 2
        assert_serializable(result)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_workloads_serializable(self, seed):
        from repro.workloads.generator import WorkloadConfig, generate_taskset

        ts = generate_taskset(
            WorkloadConfig(n_transactions=5, n_items=5, seed=seed,
                           write_probability=0.5, hot_access_probability=0.9)
        )
        result = Simulator(
            ts, make_protocol("occ-bc"), SimConfig(horizon=600.0)
        ).run()
        assert_deadlock_free(result)
        assert_serializable(result)


class TestRWPCPAbort:
    def test_high_priority_never_waits_for_lower(self):
        """Example 3's pattern: under RW-PCP T1 blocks 4 units; under the
        abort variant T2 is restarted instead and T1 meets its deadline."""
        from repro.workloads.examples import example3_taskset

        result = run(
            example3_taskset(), "rw-pcp-abort",
            SimConfig(horizon=11.0, max_instances=2),
        )
        t1 = result.job("T1#0")
        assert t1.total_blocking_time() == 0.0
        assert not t1.missed_deadline
        assert result.job("T2#0").restarts >= 1

    def test_waits_when_holder_outranks(self):
        """Equal base priority (two instances of one transaction) must
        wait, not abort: the rule requires *strictly* lower holders."""
        ts = _ts(
            TransactionSpec("T", (write("a", 1.5), read("b", 0.4)), period=2.0),
        )
        result = run(ts, "rw-pcp-abort", SimConfig(horizon=8.0))
        assert result.aborted_restarts == 0

    def test_ceiling_abort_rule_label(self):
        from repro.workloads.examples import example3_taskset

        result = run(
            example3_taskset(), "rw-pcp-abort",
            SimConfig(horizon=11.0, max_instances=2),
        )
        from repro.trace.recorder import LockOutcome

        abort_grants = [
            e for e in result.trace.lock_events
            if e.outcome is LockOutcome.ABORT_GRANTED
        ]
        assert abort_grants
        assert "ceiling abort" in abort_grants[0].rule

    @pytest.mark.parametrize("seed", range(6))
    def test_random_workloads_keep_guarantees(self, seed):
        from repro.workloads.generator import WorkloadConfig, generate_taskset

        ts = generate_taskset(
            WorkloadConfig(n_transactions=5, n_items=5, seed=seed,
                           write_probability=0.5, hot_access_probability=0.9)
        )
        result = Simulator(
            ts, make_protocol("rw-pcp-abort"), SimConfig(horizon=600.0)
        ).run()
        assert_deadlock_free(result)
        assert_serializable(result)
