"""Tests for the reproduction ledger (repro.experiments)."""

import pytest

from repro.experiments import (
    all_experiments,
    render_summary,
    run_all,
    run_example5,
    run_figure1,
    run_figure4,
    run_section9_analysis,
    run_table1,
)
from repro.experiments.spec import Check, ExperimentReport


class TestSpec:
    def test_check_equality_default(self):
        report = ExperimentReport("X", "nowhere")
        assert report.check("a claim", 3, 3).passed
        assert not report.check("another", 3, 4).passed
        assert report.n_passed == 1
        assert not report.passed

    def test_check_custom_predicate(self):
        report = ExperimentReport("X", "nowhere")
        entry = report.check(
            "within tolerance", 1.0, 1.05,
            predicate=lambda e, m: abs(e - m) < 0.1,
        )
        assert entry.passed

    def test_check_true(self):
        report = ExperimentReport("X", "nowhere")
        assert report.check_true("yes", True).passed
        assert not report.check_true("no", False).passed

    def test_render_expands_failures(self):
        report = ExperimentReport("X", "nowhere")
        report.check("good", 1, 1)
        report.check("bad", 1, 2)
        text = report.render()
        assert "bad" in text and "good" not in text
        verbose = report.render(verbose=True)
        assert "good" in verbose

    def test_check_render_format(self):
        check = Check("claim", "1", "2", False)
        assert check.render() == "[FAIL] claim: expected 1, measured 2"


class TestLedger:
    @pytest.mark.parametrize(
        "runner",
        [run_table1, run_figure1, run_figure4, run_example5,
         run_section9_analysis],
    )
    def test_individual_experiments_pass(self, runner):
        report = runner()
        assert report.passed, report.render()
        assert report.checks  # non-empty

    def test_full_ledger_passes(self):
        reports = run_all()
        assert len(reports) == len(all_experiments())
        for report in reports:
            assert report.passed, report.render()

    def test_summary_counts(self):
        reports = run_all()
        text = render_summary(reports)
        assert "ALL CHECKS PASS" in text
        total = sum(len(r.checks) for r in reports)
        assert f"{total}/{total} checks pass" in text

    def test_artifacts_present(self):
        report = run_figure4()
        assert "Max_Sysceil" in report.artifact
        assert "#" in report.artifact  # the Gantt glyphs

    def test_cli_reproduce_exit_code(self, capsys):
        from repro.cli import main

        assert main(["reproduce"]) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASS" in out

    def test_extended_ledger_passes(self):
        from repro.experiments.runner import run_all

        reports = run_all(extended=True)
        extension_reports = [r for r in reports if "extension" in r.experiment]
        assert len(extension_reports) == 5
        for report in reports:
            assert report.passed, report.render()

    def test_extended_experiments_registered(self):
        base = all_experiments()
        extended = all_experiments(extended=True)
        assert set(base) < set(extended)
        assert {"overload", "open-system", "ablation", "refined-analysis",
         "reconstruction-findings"} <= set(
            extended
        )
