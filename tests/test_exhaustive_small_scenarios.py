"""Exhaustive verification on small scenario spaces.

Property-based testing samples; these tests *enumerate*.  Every
two-transaction workload with up to two data operations each over two
items, under three arrival phasings, is simulated under the main
protocols and checked for serializability, deadlock freedom, and (for the
ceiling protocols) single blocking and zero restarts.  That is ~8.6k
simulations per protocol family — small enough to run in seconds, large
enough to cover every qualitative conflict pattern two transactions can
exhibit (all of Section 4.1's cases and their compositions).
"""

import itertools

import pytest

from repro.engine.simulator import SimConfig, Simulator
from repro.model.priorities import assign_by_order
from repro.model.spec import TransactionSpec, read, write
from repro.protocols import make_protocol
from repro.verify import (
    assert_deadlock_free,
    assert_no_restarts,
    assert_serializable,
    assert_single_blocking,
)

_ITEMS = ("a", "b")


def _programs():
    """Every non-empty program of <= 2 distinct data operations."""
    singles = [(op(item, 1.0),) for op in (read, write) for item in _ITEMS]
    pairs = []
    for first in singles:
        for op in (read, write):
            for item in _ITEMS:
                second = op(item, 1.0)
                if (first[0].kind, first[0].item) == (second.kind, second.item):
                    continue  # duplicate op adds nothing
                pairs.append((first[0], second))
    return singles + pairs


_PROGRAMS = _programs()
_OFFSETS = (0.5, 1.5, 2.5)  # mid-operation arrivals of the high-priority txn


def _scenarios():
    for low_program, high_program in itertools.product(_PROGRAMS, repeat=2):
        for offset in _OFFSETS:
            yield low_program, high_program, offset


def _simulate(protocol_name, low_program, high_program, offset):
    taskset = assign_by_order([
        TransactionSpec("H", high_program, offset=offset),
        TransactionSpec("L", low_program, offset=0.0),
    ])
    return Simulator(
        taskset,
        make_protocol(protocol_name),
        SimConfig(deadlock_action="abort_lowest"),
    ).run()


@pytest.mark.parametrize("protocol", ["pcp-da", "rw-pcp", "pcp"])
def test_ceiling_protocols_exhaustively(protocol):
    count = 0
    for low_program, high_program, offset in _scenarios():
        result = _simulate(protocol, low_program, high_program, offset)
        context = (
            f"{protocol}: L={[op.describe() for op in low_program]} "
            f"H={[op.describe() for op in high_program]} offset={offset}"
        )
        try:
            assert_deadlock_free(result)
            assert_serializable(result)
            assert_single_blocking(result)
            assert_no_restarts(result)
        except Exception as exc:  # pragma: no cover - failure reporting
            raise AssertionError(f"{context}: {exc}") from exc
        assert all(j.finish_time is not None for j in result.jobs), context
        count += 1
    assert count == len(_PROGRAMS) ** 2 * len(_OFFSETS)


@pytest.mark.parametrize("protocol", ["ccp", "2pl-hp", "occ-bc", "pip-2pl"])
def test_other_protocols_exhaustively(protocol):
    for low_program, high_program, offset in _scenarios():
        result = _simulate(protocol, low_program, high_program, offset)
        context = (
            f"{protocol}: L={[op.describe() for op in low_program]} "
            f"H={[op.describe() for op in high_program]} offset={offset}"
        )
        try:
            assert_deadlock_free(result)
            assert_serializable(result)
        except Exception as exc:  # pragma: no cover - failure reporting
            raise AssertionError(f"{context}: {exc}") from exc


def test_pcp_da_exhaustively_with_lemma_monitors():
    """The full enumeration under the lemma-checking protocol: every
    intermediate proof obligation of Section 7, on every scenario."""
    from repro.verify import LemmaCheckingPCPDA

    for low_program, high_program, offset in _scenarios():
        taskset = assign_by_order([
            TransactionSpec("H", high_program, offset=offset),
            TransactionSpec("L", low_program, offset=0.0),
        ])
        Simulator(taskset, LemmaCheckingPCPDA()).run()


def test_pcp_da_never_blocked_more_than_rw_pcp_per_scenario():
    """On two-transaction scenarios there is no scheduling anomaly (no
    third party to reshuffle), so the paper's 'blocking under PCP-DA
    implies blocking under RW-PCP' holds scenario by scenario."""
    for low_program, high_program, offset in _scenarios():
        da = _simulate("pcp-da", low_program, high_program, offset)
        rw = _simulate("rw-pcp", low_program, high_program, offset)
        da_blocked = sum(j.total_blocking_time() for j in da.jobs)
        rw_blocked = sum(j.total_blocking_time() for j in rw.jobs)
        assert da_blocked <= rw_blocked + 1e-9, (
            f"L={[op.describe() for op in low_program]} "
            f"H={[op.describe() for op in high_program]} offset={offset}: "
            f"PCP-DA blocked {da_blocked} > RW-PCP {rw_blocked}"
        )
