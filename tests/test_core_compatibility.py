"""Unit tests for Table 1 (repro.core.compatibility)."""

from repro.core.compatibility import (
    compatibility_table,
    lock_compatible,
    render_compatibility_table,
)
from repro.model.spec import LockMode


class TestLockCompatible:
    def test_read_read_ok(self):
        d = lock_compatible(LockMode.READ, LockMode.READ)
        assert d.compatible and not d.conditional

    def test_read_write_nok(self):
        """Case 2: a read blocks later conflicting writes."""
        d = lock_compatible(LockMode.READ, LockMode.WRITE)
        assert not d.compatible
        assert "Case 2" in d.rationale

    def test_write_write_ok(self):
        """Case 3: blind writes are non-conflicting."""
        d = lock_compatible(LockMode.WRITE, LockMode.WRITE)
        assert d.compatible
        assert "Case 3" in d.rationale

    def test_write_read_ok_when_condition_holds(self):
        """Case 1 with DataRead(T_L) ∩ WriteSet(T_H) = ∅."""
        d = lock_compatible(
            LockMode.WRITE, LockMode.READ,
            holder_data_read={"a"}, requester_write_set={"b"},
        )
        assert d.compatible and d.conditional

    def test_write_read_nok_when_condition_fails(self):
        d = lock_compatible(
            LockMode.WRITE, LockMode.READ,
            holder_data_read={"a", "y"}, requester_write_set={"y"},
        )
        assert not d.compatible and d.conditional
        assert "['y']" in d.rationale

    def test_condition_irrelevant_for_other_cells(self):
        """Only the write-held/read-requested cell consults the sets."""
        d = lock_compatible(
            LockMode.READ, LockMode.READ,
            holder_data_read={"y"}, requester_write_set={"y"},
        )
        assert d.compatible


class TestTableRendering:
    def test_table_has_five_rows(self):
        rows = compatibility_table()
        assert len(rows) == 5

    def test_table_outcomes_match_paper(self):
        outcomes = {
            (held, req, cond): ok
            for held, req, cond, ok in compatibility_table()
        }
        assert outcomes[("read", "read", "-")] is True
        assert outcomes[("read", "write", "-")] is False
        assert outcomes[("write", "write", "-")] is True
        assert outcomes[("write", "read", "DataRead(T_L) ∩ WriteSet(T_H) = ∅")] is True
        assert outcomes[("write", "read", "DataRead(T_L) ∩ WriteSet(T_H) ≠ ∅")] is False

    def test_render_mentions_all_outcomes(self):
        text = render_compatibility_table()
        assert "NOK" in text and "OK" in text
        assert text.count("\n") >= 6
