"""Stress-harness tests (repro.verify.stress).

Workload generation is pinned deterministically (catalog shape, arrival
schedule, burst density, chaos flags); the concurrent runner is
exercised at small scale against 1-shard and 2-shard deployments with
every verdict checked; the trend-row path round-trips through the
``repro-bench/1`` schema validator.  Acceptance-scale overload runs
(100k arrivals, the ``make stress`` battery) live behind the
``stress_soak`` marker.
"""

import asyncio
import json

import pytest

from repro.exceptions import SpecificationError
from repro.verify.stress import (
    CEILING_FAMILY,
    DEADLOCK_FREE_CEILING,
    StressReport,
    StressSpec,
    append_trend_rows,
    build_taskset,
    iter_arrivals,
    make_catalog,
    run_stress,
    simulator_stress_check,
    zipf_weights,
)


class TestSpecValidation:
    def test_rejects_zero_transactions(self):
        with pytest.raises(SpecificationError):
            StressSpec(transactions=0)

    def test_rejects_bad_ops_range(self):
        with pytest.raises(SpecificationError):
            StressSpec(min_ops=4, max_ops=2)

    def test_rejects_ops_beyond_items(self):
        with pytest.raises(SpecificationError):
            StressSpec(items=3, max_ops=4)

    def test_rejects_sub_unit_burst_factor(self):
        with pytest.raises(SpecificationError):
            StressSpec(burst_factor=0.5)

    def test_rejects_bad_abort_probability(self):
        with pytest.raises(SpecificationError):
            StressSpec(abort_probability=-0.1)


class TestWorkloadGeneration:
    def test_zipf_weights_decrease(self):
        weights = zipf_weights(10, 1.1)
        assert weights == sorted(weights, reverse=True)

    def test_catalog_is_deterministic(self):
        spec = StressSpec(seed=5)
        a, b = make_catalog(spec), make_catalog(spec)
        assert [(s.name, s.operations) for s in a.specs] == \
            [(s.name, s.operations) for s in b.specs]

    def test_catalog_priorities_distinct_and_programs_install(self):
        catalog = make_catalog(StressSpec(seed=4))
        priorities = [catalog[n].priority for n in catalog.names]
        assert len(set(priorities)) == len(priorities)
        for name in catalog.names:
            ops = catalog[name].operations
            assert any(op.kind.value == "write" for op in ops)
            items = [op.item for op in ops]
            assert len(set(items)) == len(items)

    def test_arrivals_deterministic_and_ordered(self):
        spec = StressSpec(seed=7, transactions=200)
        a, b = list(iter_arrivals(spec)), list(iter_arrivals(spec))
        assert a == b
        times = [arr.at_s for arr in a]
        assert times == sorted(times)
        assert [arr.seq for arr in a] == list(range(200))

    def test_chaos_flags_follow_probability_extremes(self):
        none = StressSpec(seed=7, transactions=50, abort_probability=0.0)
        assert not any(a.chaos_abort for a in iter_arrivals(none))
        always = StressSpec(seed=7, transactions=50, abort_probability=1.0)
        assert all(a.chaos_abort for a in iter_arrivals(always))

    def test_burst_phase_is_denser(self):
        spec = StressSpec(
            seed=9, transactions=4000, burst_factor=8.0,
            burst_period_s=0.5, burst_duty=0.25,
        )
        in_burst = sum(
            1 for a in iter_arrivals(spec)
            if a.at_s % spec.burst_period_s
            < spec.burst_period_s * spec.burst_duty
        )
        # burst windows cover 25% of the time; at 8x the rate they should
        # hold well over half of all arrivals (expected ~73%)
        assert in_burst / spec.transactions > 0.5

    def test_overload_scales_offered_rate(self):
        base = StressSpec(seed=3, transactions=500, overload=1.0)
        doubled = StressSpec(seed=3, transactions=500, overload=2.0)
        last = lambda s: list(iter_arrivals(s))[-1].at_s  # noqa: E731
        assert last(doubled) < last(base)


class TestBuildTaskset:
    def test_priorities_unique_and_type_ordered(self):
        spec = StressSpec(seed=6, transactions=40)
        taskset = build_taskset(spec)
        priorities = [s.priority for s in taskset.specs]
        assert len(set(priorities)) == len(priorities)
        catalog = make_catalog(spec)
        by_type = {}
        for s in taskset.specs:
            by_type.setdefault(s.name.split("@")[0], []).append(s.priority)
        # every instance of a higher-priority type outranks every
        # instance of a lower one
        ranked_types = sorted(
            by_type, key=lambda t: -catalog[t].priority
        )
        for higher, lower in zip(ranked_types, ranked_types[1:]):
            assert min(by_type[higher]) > max(by_type[lower])

    def test_limit_bounds_the_instancing(self):
        spec = StressSpec(seed=6, transactions=400)
        assert len(build_taskset(spec, limit=25).specs) == 25


class TestTrendLedger:
    def _report(self, shards=1, committed=100, wall=2.0):
        report = StressReport(
            spec=StressSpec(seed=1), protocol="pcp-da", shards=shards,
        )
        report.committed = committed
        report.wall_s = wall
        return report

    def test_trend_row_shape(self):
        row = self._report(shards=4).trend_row()
        assert row["benchmark"] == "stress_loadgen"
        assert row["protocol"] == "pcp-da@4sh"
        assert row["events"] == 100
        assert row["events_per_sec"] == pytest.approx(50.0)

    def test_append_creates_and_extends_a_valid_ledger(self, tmp_path):
        from benchmarks.perf_report import validate_bench_document

        path = tmp_path / "BENCH_stress.json"
        append_trend_rows(path, [self._report().trend_row()])
        doc = append_trend_rows(
            path, [self._report(shards=4, committed=40).trend_row()]
        )
        validate_bench_document(doc)
        assert doc["mode"] == "stress"
        assert len(doc["results"]) == 2
        assert doc["totals"]["events"] == 140
        on_disk = json.loads(path.read_text())
        assert on_disk["totals"] == doc["totals"]


@pytest.mark.stress
class TestConcurrentStress:
    def _spec(self, **overrides):
        params = dict(
            seed=1, transactions=300, overload=1.5,
            arrival_rate_hz=3000.0, abort_probability=0.05,
        )
        params.update(overrides)
        return StressSpec(**params)

    def test_single_shard_run_passes_all_checks(self):
        report = asyncio.run(run_stress(self._spec(), "pcp-da"))
        assert report.ok, report.render()
        assert report.begun == (
            report.committed + report.client_aborts
            + report.forced_aborts + report.deadline_misses
        )
        assert report.history_events > 0

    def test_two_shard_run_passes_all_checks(self):
        report = asyncio.run(run_stress(
            self._spec(), "pcp-da", shards=2, max_sessions=64,
        ))
        assert report.ok, report.render()
        assert report.shards == 2
        assert "shards" in report.stats_doc

    def test_full_chaos_is_deterministic(self):
        report = asyncio.run(run_stress(
            self._spec(abort_probability=1.0), "pcp-da",
        ))
        assert report.ok, report.render()
        assert report.committed == 0
        assert report.client_aborts == report.begun

    def test_rw_pcp_also_holds(self):
        report = asyncio.run(run_stress(self._spec(), "rw-pcp"))
        assert report.ok, report.render()


@pytest.mark.stress
class TestSimulatorOracle:
    def test_pcp_da_prefix_passes_theorem_oracles(self):
        result = simulator_stress_check(
            StressSpec(seed=2, transactions=300), "pcp-da", limit=120,
        )
        assert len(result.jobs) == 120

    def test_kernel_fallback_protocol_passes_too(self):
        # rw-pcp-abort opts out of the kernel; the byte-identity half of
        # the check then pins the fallback path on the stress schedule
        simulator_stress_check(
            StressSpec(seed=2, transactions=300), "rw-pcp-abort", limit=80,
        )


class TestFamilies:
    def test_deadlock_free_family_is_a_subset(self):
        assert set(DEADLOCK_FREE_CEILING) < set(CEILING_FAMILY)
        assert "weak-pcp-da" not in DEADLOCK_FREE_CEILING


@pytest.mark.stress_soak
class TestAcceptanceSoak:
    """The ``make stress`` acceptance criterion at pytest's disposal."""

    def test_100k_overload_trace_single_and_sharded(self):
        spec = StressSpec(
            seed=0, transactions=100_000, overload=2.0,
            abort_probability=0.02,
        )
        for shards, cap in ((1, 512), (4, 64)):
            report = asyncio.run(run_stress(
                spec, "pcp-da", shards=shards, max_sessions=cap,
            ))
            assert report.ok, report.render()
