"""Tests for the SVG Gantt renderer (repro.trace.svg)."""

import xml.etree.ElementTree as ET

import pytest

from repro.engine.simulator import SimConfig
from repro.trace.svg import render_svg_gantt
from tests.conftest import run

_SVG_NS = "{http://www.w3.org/2000/svg}"


def _parse(svg_text):
    return ET.fromstring(svg_text)


class TestRenderSvgGantt:
    @pytest.fixture
    def svg_root(self, ex4):
        return _parse(render_svg_gantt(run(ex4, "rw-pcp"), title="Figure 5"))

    def test_is_well_formed_svg(self, svg_root):
        assert svg_root.tag == f"{_SVG_NS}svg"
        assert float(svg_root.get("width")) > 0
        assert float(svg_root.get("height")) > 0

    def test_one_label_per_transaction(self, svg_root):
        texts = {
            element.text for element in svg_root.iter(f"{_SVG_NS}text")
        }
        assert {"T1", "T2", "T3", "T4"} <= texts

    def test_title_rendered(self, svg_root):
        texts = {e.text for e in svg_root.iter(f"{_SVG_NS}text")}
        assert "Figure 5" in texts

    @staticmethod
    def _segment_bars(root, colour):
        """Rects of the given colour that carry a tooltip (segment bars;
        the legend swatches have no <title> child)."""
        return [
            r for r in root.iter(f"{_SVG_NS}rect")
            if r.get("fill") == colour
            and r.find(f"{_SVG_NS}title") is not None
        ]

    def test_blocked_bars_present_under_rw_pcp(self, svg_root):
        assert self._segment_bars(svg_root, "#d65f5f")  # T3's and T1's bars

    def test_no_blocked_bars_under_pcp_da(self, ex4):
        root = _parse(render_svg_gantt(run(ex4, "pcp-da")))
        assert self._segment_bars(root, "#d65f5f") == []

    def test_sysceil_path_present(self, svg_root):
        dashed = [
            p for p in svg_root.iter(f"{_SVG_NS}path")
            if p.get("stroke-dasharray")
        ]
        assert len(dashed) == 1

    def test_sysceil_can_be_disabled(self, ex4):
        root = _parse(
            render_svg_gantt(run(ex4, "pcp-da"), include_sysceil=False)
        )
        dashed = [
            p for p in root.iter(f"{_SVG_NS}path") if p.get("stroke-dasharray")
        ]
        assert dashed == []

    def test_tooltips_carry_segment_info(self, svg_root):
        titles = [t.text for t in svg_root.iter(f"{_SVG_NS}title")]
        assert any("blocked" in t for t in titles)
        assert any("T4#0 executing" in t for t in titles)

    def test_periodic_run_renders(self, ex3):
        result = run(ex3, "pcp-da", SimConfig(horizon=11.0, max_instances=2))
        root = _parse(render_svg_gantt(result))
        assert root.tag == f"{_SVG_NS}svg"

    def test_cli_export_writes_svg(self, tmp_path):
        from repro.cli import main

        assert main([
            "export", "example4", "--output-dir", str(tmp_path),
        ]) == 0
        svg_path = tmp_path / "example4_pcp-da.svg"
        assert svg_path.exists()
        _parse(svg_path.read_text())  # well-formed
