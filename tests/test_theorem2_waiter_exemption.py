"""The Theorem 2 waiter exemption — a deadlock our fuzzer found and the
reconstruction detail that removes it.

The paper's Lemma 8 asserts that a read lock acquired through LC3/LC4
"cannot block T*".  Read literally, the locking conditions do not make
that true: in the workload below, T2 (granted c through LC4 while T3 was
T*) later blocks on T3's read lock, T3 inherits, and T3's own read request
on c then fails every condition (LC4's ``No_Rlock`` sees T2's read lock) —
a two-transaction wait cycle, contradicting Theorem 2.

The reconstruction (DESIGN.md §2.10): transactions transitively blocked
*on the requester* are exempt from the requester's ceiling computations
(``Sysceil``, ``T*``, ``No_Rlock``).  A waiter cannot run until the
requester commits, so its read locks cannot represent future conflicting
writes against the requester; the Table-1 data-consistency condition still
applies against every write holder, waiters included, and LC1 still
respects waiters' read locks (granting a write over a waiting reader is
genuinely unsafe).
"""

import pytest

from repro.engine.simulator import SimConfig, Simulator
from repro.model.priorities import assign_by_order
from repro.model.spec import TransactionSpec, read, write
from repro.protocols import make_protocol
from repro.verify import (
    assert_value_replay_consistent,
    verify_pcp_da_run,
)


def _fuzzer_workload():
    """The minimal counterexample, verbatim from the fuzzing session."""
    return assign_by_order([
        TransactionSpec(
            "T1", (read("a", 2.0), read("b", 1.0), write("a", 1.0)), offset=1.0
        ),
        TransactionSpec(
            "T2", (read("c", 2.0), write("c", 1.0), read("a", 1.0)), offset=6.0
        ),
        TransactionSpec("T3", (read("a", 1.0), read("c", 1.0)), offset=5.0),
    ])


class TestWaiterExemption:
    def test_fuzzer_workload_completes(self):
        result = Simulator(
            _fuzzer_workload(), make_protocol("pcp-da")
        ).run()
        assert result.deadlock is None
        assert [j.finish_time for j in result.jobs] == [5.0, 10.0, 11.0]
        verify_pcp_da_run(result)
        assert_value_replay_consistent(result)

    def test_the_blocked_waiter_is_exempt_from_ceilings(self):
        """At t=9: T2 (blocked on T3's read lock of a) holds read+write
        locks on c; T3's read of c must pass — via LC2, because the only
        read-locked items belong to T2, which waits on T3."""
        result = Simulator(
            _fuzzer_workload(), make_protocol("pcp-da")
        ).run()
        t3_grants = result.trace.grants_for("T3#0")
        c_grant = next(g for g in t3_grants if g.item == "c")
        assert c_grant.time == 9.0
        assert c_grant.rule == "LC2"

    def test_lc4_guard_closes_the_writeset_variant_organically(self):
        """When T3 (the eventual T*) also WRITES c, T2's LC4 admission of
        c is denied up front (c ∈ WriteSet(T*)), so the dangerous shape —
        a waiter holding a write lock on an item whose reads the requester
        would invalidate — never forms; everything commits."""
        ts = assign_by_order([
            TransactionSpec(
                "T1", (read("a", 2.0), read("b", 1.0), write("a", 1.0)),
                offset=1.0,
            ),
            TransactionSpec(
                "T2", (read("c", 2.0), write("c", 1.0), read("a", 1.0)),
                offset=6.0,
            ),
            TransactionSpec(
                "T3", (read("a", 1.0), read("c", 1.0), write("c", 1.0)),
                offset=5.0,
            ),
        ])
        result = Simulator(ts, make_protocol("pcp-da")).run()
        assert result.deadlock is None
        denial = result.trace.denials_for("T2#0")[0]
        assert denial.time == 6.0 and "ceiling" in denial.rule
        verify_pcp_da_run(result)
        assert_value_replay_consistent(result)

    def test_table1_check_still_guards_waiters_writes(self):
        """Protocol-level check of the residual safety condition: the
        waiter exemption must NOT bypass the Table-1 condition against a
        waiting WRITE holder whose reads the requester would invalidate."""
        from repro.core.pcp_da import PCPDA
        from repro.engine.inheritance import WaitForGraph
        from repro.engine.interfaces import Deny
        from repro.engine.job import Job
        from repro.engine.lock_table import LockTable
        from repro.model.spec import LockMode

        ts = assign_by_order([
            TransactionSpec("W", (read("y", 1.0), write("x", 1.0))),
            TransactionSpec("R", (read("x", 1.0), write("y", 1.0))),
        ])
        protocol = PCPDA()
        table = LockTable()
        waits = WaitForGraph()
        protocol.bind(ts, table)
        protocol.bind_runtime(waits)
        w = Job(ts["W"], 0, 0.0)
        r = Job(ts["R"], 0, 0.0)
        # W write-locks x, has read y, and waits on R (synthetic state).
        table.grant(w, "x", LockMode.WRITE)
        w.data_read.add("y")
        waits.block(w, [r])
        # R requests read x; DataRead(W) ∩ WriteSet(R) = {y}: denied by
        # the Table-1 condition even though W waits on R.
        decision = protocol.decide(r, "x", LockMode.READ)
        assert isinstance(decision, Deny)
        assert "Table 1" in decision.reason

    def test_lc1_does_not_exempt_waiting_readers(self):
        """A write lock over a waiting reader's read lock must stay
        denied: the waiting reader's read would otherwise be overwritten
        by an earlier-committing writer it precedes in SG(H)."""
        from repro.core.pcp_da import PCPDA
        from repro.engine.inheritance import WaitForGraph
        from repro.engine.job import Job
        from repro.engine.lock_table import LockTable
        from repro.engine.interfaces import Deny
        from repro.model.spec import LockMode, TaskSet

        ts = assign_by_order([
            TransactionSpec("H", (read("x", 1.0), read("y", 1.0))),
            TransactionSpec("L", (write("x", 1.0),)),
        ])
        protocol = PCPDA()
        table = LockTable()
        waits = WaitForGraph()
        protocol.bind(ts, table)
        protocol.bind_runtime(waits)
        h = Job(ts["H"], 0, 0.0)
        l = Job(ts["L"], 0, 0.0)
        table.grant(h, "x", LockMode.READ)
        waits.block(h, [l])  # H waits on L (synthetic)
        decision = protocol.decide(l, "x", LockMode.WRITE)
        assert isinstance(decision, Deny)
