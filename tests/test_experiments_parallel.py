"""Tests for the parallel sweep engine and the on-disk result cache.

The two guarantees under test are the ones docs/PERFORMANCE.md documents:

* **serial equivalence** — ``run_all(jobs=N)`` renders byte-identically to
  the serial runner for every ``N`` and every cache state;
* **sound caching** — a cached report round-trips losslessly, hits and
  misses are counted, and bumping the ``repro`` version busts every entry.
"""

import json

import pytest

from repro.experiments import (
    EXPERIMENT_ORDER,
    EXTENSION_ORDER,
    ExperimentJob,
    ParallelRunner,
    ResultCache,
    all_experiments,
    experiment_order,
    parallel_map,
    render_summary,
    run_all,
    spec_key,
)
from repro.experiments.cache import CACHE_FORMAT, default_cache_dir
from repro.experiments.figures import run_figure1, run_table1
from repro.experiments.spec import Check, ExperimentReport


def _square(x):
    """Module-level (picklable) helper for parallel_map tests."""
    return x * x


class TestOrdering:
    def test_all_experiments_in_documented_order(self):
        assert tuple(all_experiments()) == EXPERIMENT_ORDER
        assert tuple(all_experiments(extended=True)) == (
            EXPERIMENT_ORDER + EXTENSION_ORDER
        )

    def test_experiment_order_helper(self):
        assert experiment_order() == EXPERIMENT_ORDER
        assert experiment_order(extended=True)[-len(EXTENSION_ORDER):] == (
            EXTENSION_ORDER
        )

    def test_mutating_the_returned_dict_is_harmless(self):
        snapshot = all_experiments()
        snapshot["bogus"] = lambda: None
        snapshot.pop("table1")
        assert tuple(all_experiments()) == EXPERIMENT_ORDER

    def test_run_all_reports_follow_registration_order(self):
        names = [r.experiment for r in run_all()]
        # Experiment display names are distinct per entry; the summary
        # must list them in EXPERIMENT_ORDER positions.
        assert len(names) == len(EXPERIMENT_ORDER)
        assert names[0].startswith("Table 1")
        assert names[-1].startswith("Section 9 (schedulable-fraction")


class TestSerialEquivalence:
    def test_parallel_full_ledger_is_byte_identical(self):
        serial = render_summary(run_all())
        parallel = render_summary(run_all(jobs=4))
        assert parallel == serial

    def test_parallel_with_cache_is_byte_identical(self, tmp_path):
        serial = render_summary(run_all())
        cold = render_summary(run_all(jobs=4, cache=ResultCache(tmp_path)))
        warm = render_summary(run_all(jobs=4, cache=ResultCache(tmp_path)))
        assert cold == serial
        assert warm == serial

    def test_runner_preserves_submission_order(self):
        jobs = [
            ExperimentJob("figure1", run_figure1),
            ExperimentJob("table1", run_table1),
        ]
        reports = ParallelRunner(jobs=2).run(jobs)
        assert reports[0].experiment.startswith("Figure 1")
        assert reports[1].experiment.startswith("Table 1")

    def test_parallel_map_orders_and_degrades(self):
        items = list(range(7))
        assert parallel_map(_square, items, jobs=1) == [x * x for x in items]
        assert parallel_map(_square, items, jobs=3) == [x * x for x in items]
        assert parallel_map(_square, [], jobs=3) == []


class TestResultCache:
    def _report(self):
        report = ExperimentReport("X", "nowhere", artifact="art")
        report.check("claim", 1, 1)
        report.check_true("truth", False, measured="meh")
        return report

    def test_report_round_trip(self):
        report = self._report()
        clone = ExperimentReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert clone == report
        assert clone.render(verbose=True) == report.render(verbose=True)

    def test_check_round_trip(self):
        check = Check("c", "1", "2", False)
        assert Check.from_dict(check.to_dict()) == check

    def test_put_get_and_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("x", run_table1)
        assert cache.get(key) is None
        assert cache.counters() == (0, 1)
        cache.put(key, self._report())
        assert cache.get(key) == self._report()
        assert cache.counters() == (1, 1)
        assert len(cache) == 1

    def test_version_bump_busts_cache(self, tmp_path):
        old = ResultCache(tmp_path, version="1.0.0")
        old.put(old.key_for("x", run_table1), self._report())
        new = ResultCache(tmp_path, version="2.0.0")
        assert new.get(new.key_for("x", run_table1)) is None
        assert new.misses == 1

    def test_spec_key_sensitivity(self):
        base = spec_key("x", run_table1, (), version="1")
        assert spec_key("x", run_table1, (), version="1") == base
        assert spec_key("y", run_table1, (), version="1") != base
        assert spec_key("x", run_figure1, (), version="1") != base
        assert spec_key("x", run_table1, ("seed=1",), version="1") != base
        assert spec_key("x", run_table1, (), version="2") != base

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("x", run_table1)
        cache.put(key, self._report())
        path = cache._path(key)
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache.key_for("a"), self._report())
        cache.put(cache.key_for("b"), self._report())
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_default_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert default_cache_dir() == tmp_path / "envcache"

    def test_cache_format_in_key_material(self):
        # The format constant participates in the digest: a format change
        # must not read old-layout entries.
        assert isinstance(CACHE_FORMAT, int)


class TestRunnerStatsAndCache:
    def test_cold_then_warm_counters(self, tmp_path):
        stats_out = []
        run_all(cache=ResultCache(tmp_path), stats_out=stats_out)
        cold = stats_out[-1]
        assert cold.cache_hits == 0
        assert cold.cache_misses == len(EXPERIMENT_ORDER)
        assert cold.executed == len(EXPERIMENT_ORDER)
        assert set(cold.job_times) == set(EXPERIMENT_ORDER)

        run_all(cache=ResultCache(tmp_path), stats_out=stats_out)
        warm = stats_out[-1]
        assert warm.cache_hits == len(EXPERIMENT_ORDER)
        assert warm.cache_misses == 0
        assert warm.executed == 0
        assert warm.timing_summary() is None

    def test_parallel_stats_shape(self, tmp_path):
        stats_out = []
        run_all(jobs=3, cache=ResultCache(tmp_path), stats_out=stats_out)
        stats = stats_out[-1]
        assert stats.workers == 3
        assert stats.max_queue_depth == len(EXPERIMENT_ORDER)
        assert stats.wall_time > 0
        summary = stats.timing_summary()
        assert summary is not None and summary.n == len(EXPERIMENT_ORDER)
        line = stats.render()
        assert "cache 0 hit" in line and "workers=3" in line

    def test_progress_lines_on_stderr(self, capsys, tmp_path):
        run_all(jobs=2, cache=ResultCache(tmp_path), progress=True)
        err = capsys.readouterr().err
        assert f"[{len(EXPERIMENT_ORDER)}/{len(EXPERIMENT_ORDER)}]" in err


class TestSweepParallelism:
    def test_section9_sweep_jobs_identical(self):
        from repro.experiments.section9 import run_section9_sweep

        serial = run_section9_sweep(sets_per_point=5)
        fanned = run_section9_sweep(sets_per_point=5, jobs=3)
        assert fanned.render(verbose=True) == serial.render(verbose=True)

    def test_run_batch_jobs_identical(self):
        from repro.stats import run_batch
        from repro.workloads.generator import WorkloadConfig

        workloads = [
            WorkloadConfig(seed=s, target_utilization=0.5) for s in range(3)
        ]
        serial = run_batch(["pcp-da", "rw-pcp"], workloads)
        fanned = run_batch(["pcp-da", "rw-pcp"], workloads, jobs=3)
        assert fanned == serial

    def test_workload_fingerprint_stability(self):
        from repro.workloads.generator import WorkloadConfig

        a = WorkloadConfig(seed=3)
        assert a.fingerprint() == WorkloadConfig(seed=3).fingerprint()
        assert a.fingerprint() != WorkloadConfig(seed=4).fingerprint()
        assert a.fingerprint() != WorkloadConfig(
            seed=3, write_probability=0.9
        ).fingerprint()


class TestCLI:
    def test_reproduce_jobs_and_cache_dir(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path / "cache")
        assert main(["reproduce", "--jobs", "2", "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr()
        assert "ALL CHECKS PASS" in first.out
        assert "cache 0 hit" in first.err

        assert main(["reproduce", "--jobs", "2", "--cache-dir", cache_dir]) == 0
        second = capsys.readouterr()
        assert second.out == first.out  # byte-identical warm rerun
        assert "hit" in second.err and " 0 miss" in second.err

    def test_reproduce_rejects_unusable_cache_dir(self, tmp_path, capsys):
        from repro.cli import main

        not_a_dir = tmp_path / "a_file"
        not_a_dir.write_text("occupied")
        assert main(["reproduce", "--cache-dir", str(not_a_dir)]) == 2
        err = capsys.readouterr().err
        assert "unusable" in err and "--no-cache" in err

    def test_reproduce_no_cache(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        assert main([
            "reproduce", "--no-cache", "--cache-dir", str(cache_dir),
        ]) == 0
        assert not cache_dir.exists()
        assert "ALL CHECKS PASS" in capsys.readouterr().out
