"""Documentation deliverable guard: every public item has a docstring.

Walks every module under :mod:`repro` and asserts that the module itself
and each public (non-underscore) class, function, and method defined there
carries a non-trivial docstring.  This keeps the "doc comments on every
public item" promise enforceable rather than aspirational.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

_MIN_DOC_LENGTH = 10


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.__main__":
            continue  # executes the CLI on import
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


def _defined_here(obj, module) -> bool:
    return getattr(obj, "__module__", None) == module.__name__


def _doc_ok(obj) -> bool:
    doc = inspect.getdoc(obj)
    return doc is not None and len(doc.strip()) >= _MIN_DOC_LENGTH


def test_parallel_sweep_modules_are_covered():
    """Guard: the sweep-engine modules must stay under the doc walker.

    ``_iter_modules`` discovers modules dynamically, so a packaging slip
    (e.g. the module moving out of the ``repro`` namespace) would silently
    drop its docstring enforcement.  Pin the modules the parallel-runner
    PR added so that cannot happen unnoticed.
    """
    names = {module.__name__ for module in MODULES}
    assert {
        "repro.experiments.parallel",
        "repro.experiments.cache",
        "repro.experiments.runner",
        "repro.experiments.spec",
        "repro.experiments.faults",
        "repro.experiments.retry",
        "repro.service.sharding",
        "repro.service.sharding.partitioner",
        "repro.service.sharding.coordinator",
    } <= names


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert _doc_ok(module), f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not _defined_here(obj, module):
                continue
            if not _doc_ok(obj):
                undocumented.append(f"{module.__name__}.{name}")
            if inspect.isclass(obj):
                for member_name, member in vars(obj).items():
                    if member_name.startswith("_"):
                        continue
                    if inspect.isfunction(member) and not _doc_ok(member):
                        undocumented.append(
                            f"{module.__name__}.{name}.{member_name}"
                        )
    assert not undocumented, f"missing docstrings: {undocumented}"
