"""RemoteShardProxy ↔ ShardHostServer tests over in-memory streams.

Socket-free (``make verify-procs`` tier): the proxy talks to a real
:class:`ShardHostServer` connection handler through paired in-memory
streams, so every byte of the v2 protocol — hello, subscribe, event
frames, the shard-op family — is exercised without a TCP stack or a
child process.  The frame-before-response ordering the mirrors rely on
is the real server's, not a simulation of it.
"""

import asyncio

import pytest

from repro.exceptions import ServiceError, SessionStateError
from repro.model.priorities import assign_by_order
from repro.model.spec import TaskSet, TransactionSpec, read, write
from repro.service import LockManager, ShardedLockManager
from repro.service import wire
from repro.service.manager import SessionState
from repro.service.sharding.procs.host import ShardHostServer
from repro.service.sharding.procs.proxy import RemoteShardProxy


def catalog_rw() -> TaskSet:
    specs = [
        TransactionSpec("R", (read("x", 1.0),), offset=0.0),
        TransactionSpec("W", (write("x", 1.0), write("y", 1.0)), offset=0.0),
    ]
    return assign_by_order(specs)


def catalog_two_shards() -> TaskSet:
    """Range over 2 shards: {a, b} on shard 0, {f} on shard 1."""
    r = TransactionSpec("R", (read("b", 1.0),))
    rf = TransactionSpec("RF", (read("f", 1.0), write("a", 1.0)))
    w = TransactionSpec("W", (write("b", 1.0), write("f", 1.0)))
    return assign_by_order([r, rf, w])


def run(coro):
    return asyncio.run(coro)


async def settle(steps: int = 10) -> None:
    for _ in range(steps):
        await asyncio.sleep(0)


class MemoryWriter:
    """StreamWriter facade feeding a peer StreamReader directly."""

    def __init__(self, peer: asyncio.StreamReader):
        self._peer = peer
        self._closed = False

    def write(self, data: bytes) -> None:
        if self._closed:
            raise ConnectionResetError("memory stream closed")
        self._peer.feed_data(data)

    async def drain(self) -> None:
        if self._closed:
            raise ConnectionResetError("memory stream closed")
        await asyncio.sleep(0)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._peer.feed_eof()

    def is_closing(self) -> bool:
        return self._closed

    async def wait_closed(self) -> None:
        await asyncio.sleep(0)


def duplex():
    """Two connected (reader, writer) ends, client first."""
    to_server = asyncio.StreamReader()
    to_client = asyncio.StreamReader()
    return (
        (to_client, MemoryWriter(to_server)),   # client end
        (to_server, MemoryWriter(to_client)),   # server end
    )


class Host:
    """One in-memory shard host: manager + served connection + proxy."""

    def __init__(self, catalog: TaskSet, protocol: str = "pcp-da"):
        self.catalog = catalog
        self.manager = LockManager(catalog, protocol)
        self.server = ShardHostServer(self.manager)
        self.proxy = None
        self._connection = None

    async def start(self) -> "Host":
        (client_r, client_w), (server_r, server_w) = duplex()
        self._connection = asyncio.ensure_future(
            self.server._serve_connection(server_r, server_w)
        )
        self.proxy = await RemoteShardProxy.from_streams(
            self.catalog, client_r, client_w, label="shard-mem"
        )
        return self

    async def stop(self) -> None:
        if self.proxy is not None:
            await self.proxy.shutdown()
        if self._connection is not None:
            await asyncio.wait_for(self._connection, 5)
        await self.manager.shutdown()


class TestHandshake:
    def test_from_streams_negotiates_and_subscribes(self):
        async def body():
            host = await Host(catalog_rw()).start()
            assert host.proxy.protocol.name == "pcp-da"
            assert host.proxy.is_remote is True
            # subscribe registered this connection for push frames
            assert len(host.server._subscribers) == 1
            await host.stop()
            assert host.server._subscribers == {}

        run(body())

    def test_missing_features_refused(self):
        async def body():
            (client_r, client_w), (server_r, server_w) = duplex()

            async def stingy_server():
                line = await server_r.readline()
                request = wire.decode(line)
                assert request["op"] == "hello"
                server_w.write(wire.encode(wire.ok_response(
                    request["id"],
                    {"version": wire.PROTOCOL_VERSION, "protocol": "pcp-da",
                     "features": ["events"]},  # no shard-ops
                )))

            server = asyncio.ensure_future(stingy_server())
            with pytest.raises(ServiceError) as info:
                await RemoteShardProxy.from_streams(
                    catalog_rw(), client_r, client_w, label="stingy"
                )
            assert "shard-ops" in str(info.value)
            await server

        run(body())

    def test_version_mismatch_surfaces_protocol_error(self):
        async def body():
            (client_r, client_w), (server_r, server_w) = duplex()

            async def old_server():
                request = wire.decode(await server_r.readline())
                manager = LockManager(catalog_rw(), "pcp-da")
                response = await wire.dispatch_request(
                    manager, {**request, "version": "repro-service/1"}
                )
                server_w.write(wire.encode(response))
                await manager.shutdown()

            server = asyncio.ensure_future(old_server())
            from repro.exceptions import ProtocolVersionError
            with pytest.raises(ProtocolVersionError):
                await RemoteShardProxy.from_streams(
                    catalog_rw(), client_r, client_w, label="old"
                )
            await server

        run(body())


class TestProxySurface:
    def test_begin_read_write_commit_round_trip(self):
        async def body():
            host = await Host(catalog_rw()).start()
            proxy = host.proxy
            leg = await proxy.begin("W")
            assert leg.name == "W#0"
            assert leg.name in proxy._legs and leg.name in proxy._jobs
            await proxy.write(leg, "x", 10)
            await proxy.write(leg, "y", 11)
            result = await proxy.commit(leg)
            assert sorted(result["installed"]) == ["x", "y"]
            # finish frame preceded the commit ack: mirror already flipped
            assert leg.state is SessionState.COMMITTED
            assert leg.name not in proxy._legs
            reader = await proxy.begin("R")
            assert await proxy.read(reader, "x") == 10
            await proxy.commit(reader)
            await host.stop()

        run(body())

    def test_pin_leg_seq_reaches_the_host_before_later_calls(self):
        async def body():
            host = await Host(catalog_rw()).start()
            leg = await host.proxy.begin("R", instance=3)
            host.proxy.pin_leg_seq(leg, 77)
            # same-stream FIFO: the next awaited call flushes the post
            await host.proxy.read(leg, "x")
            assert host.manager.session(leg.id).job.seq == 77
            await host.proxy.commit(leg)
            await host.stop()

        run(body())

    def test_wire_errors_re_raise_typed(self):
        async def body():
            host = await Host(catalog_rw()).start()
            with pytest.raises(ServiceError):
                await host.proxy.begin("NOPE")  # bad-request kind
            leg = await host.proxy.begin("R")
            host.manager.force_abort(
                host.manager.session(leg.id), "host-side abort"
            )
            await settle()
            with pytest.raises(SessionStateError):
                await host.proxy.read(leg, "x")
            await host.stop()

        run(body())

    def test_calls_after_shutdown_fail_cleanly(self):
        async def body():
            host = await Host(catalog_rw()).start()
            leg = await host.proxy.begin("R")
            await host.proxy.shutdown()
            with pytest.raises(ServiceError):
                await host.proxy.read(leg, "x")
            host.proxy._post("unprepare", session=leg.id)  # silent no-op
            if host._connection is not None:
                await asyncio.wait_for(host._connection, 5)
            await host.manager.shutdown()

        run(body())


class TestMirrors:
    def test_constraint_frames_build_the_predecessor_mirror(self):
        async def body():
            host = await Host(catalog_rw()).start()
            proxy = host.proxy
            w = await proxy.begin("W")
            await proxy.write(w, "x", 1)
            r = await proxy.begin("R")
            # LC3: the read passes W's write lock, recording R ≺ W.
            await proxy.read(r, "x")
            assert proxy._pred.get(w.name) == {r.name}
            assert proxy._succ.get(r.name) == {w.name}
            preds = proxy._transitive_preds(w.job)
            assert {job.name for job in preds} == {r.name}
            await proxy.commit(r)
            await settle()
            # r is terminal: the constraint node is pruned
            assert proxy._transitive_preds(w.job) == set()
            await proxy.commit(w)
            await host.stop()

        run(body())

    def test_wait_and_unwait_frames_track_parked_legs(self):
        async def body():
            host = await Host(catalog_rw()).start()
            proxy = host.proxy
            w = await proxy.begin("W")
            await proxy.write(w, "x", 1)
            gate = await proxy.prepare_commit(w)
            assert w.committing is True
            assert isinstance(gate, tuple)
            r = await proxy.begin("R")
            reading = asyncio.ensure_future(proxy.read(r, "x"))
            await settle()
            # the fence parked the reader; the wait frame mirrored it
            assert proxy._wait_edges == {r.name: (w.name,)}
            assert [j.name for j in proxy.waits.waiters()] == [r.name]
            assert [j.name for j in proxy.waits.blockers_of(r.job)] == [w.name]
            proxy.unprepare_commit(w)
            assert w.committing is False
            await reading
            assert proxy._wait_edges == {}
            await proxy.commit(r)
            await proxy.commit(w)
            await host.stop()

        run(body())

    def test_abort_frame_flips_the_mirror_with_the_host_reason(self):
        async def body():
            host = await Host(catalog_rw()).start()
            proxy = host.proxy
            seen = []
            proxy.churn_listeners.append(
                lambda kind, job, other: seen.append((kind, job.name))
            )
            leg = await proxy.begin("R")
            host.manager.force_abort(
                host.manager.session(leg.id), "deadlock victim"
            )
            await settle()
            assert leg.state is SessionState.ABORTED
            assert "deadlock victim" in leg.abort_reason
            assert leg.name not in proxy._legs
            assert ("abort", leg.name) in seen
            await host.stop()

        run(body())

    def test_local_force_abort_flips_now_and_drops_the_echo(self):
        async def body():
            host = await Host(catalog_rw()).start()
            proxy = host.proxy
            seen = []
            proxy.churn_listeners.append(
                lambda kind, job, other: seen.append((kind, job.name))
            )
            leg = await proxy.begin("R")
            proxy.force_abort(leg, "coordinator victim")
            assert leg.state is SessionState.ABORTED
            proxy.force_abort(leg, "twice")  # idempotent
            assert leg.abort_reason == "coordinator victim"
            await settle()
            # host applied it...
            assert not host.manager.session(leg.id).state.live
            # ...and its confirming abort frame was dropped (no mirror)
            assert ("abort", leg.name) not in seen
            await host.stop()

        run(body())

    def test_mark_lost_terminates_every_live_leg_locally(self):
        async def body():
            host = await Host(catalog_rw()).start()
            proxy = host.proxy
            a = await proxy.begin("R")
            b = await proxy.begin("W")
            proxy.mark_lost("exited with code -9")
            for leg in (a, b):
                assert leg.state is SessionState.ABORTED
                assert "shard host lost" in leg.abort_reason
            assert proxy._legs == {} and proxy._jobs == {}
            await host.stop()

        run(body())

    def test_decision_frames_reach_listeners(self):
        async def body():
            host = await Host(catalog_rw()).start()
            events = []
            host.proxy.decision_listeners.append(events.append)
            leg = await host.proxy.begin("R")
            await host.proxy.read(leg, "x")
            await host.proxy.commit(leg)
            assert events, "no decision frames arrived"
            assert events[0].job == leg.name
            assert events[0].item == "x"
            await host.stop()

        run(body())


class TestProxyCoordinator:
    """A real ShardedLockManager over two in-memory remote shards."""

    async def deployment(self):
        hosts = [
            await Host(catalog_two_shards()).start(),
            await Host(catalog_two_shards()).start(),
        ]
        coordinator = ShardedLockManager(
            catalog_two_shards(), "pcp-da",
            shards=2, partitioner="range",
            shard_managers=[host.proxy for host in hosts],
        )
        return hosts, coordinator

    async def teardown(self, hosts, coordinator):
        await coordinator.shutdown()
        for host in hosts:
            await host.stop()

    def test_cross_shard_commit_end_to_end(self):
        async def body():
            hosts, coordinator = await self.deployment()
            session = await coordinator.begin("W")
            assert session.span == frozenset({0, 1})
            await coordinator.write(session, "b", 1)
            await coordinator.write(session, "f", 2)
            result = await coordinator.commit(session)
            assert result["installed"] == ["b", "f"]
            reader = await coordinator.begin("R")
            assert await coordinator.read(reader, "b") == 1
            await coordinator.commit(reader)
            await self.teardown(hosts, coordinator)

        run(body())

    def test_remote_stats_and_history_paths(self):
        async def body():
            hosts, coordinator = await self.deployment()
            session = await coordinator.begin("W")
            await coordinator.write(session, "b", 1)
            await coordinator.write(session, "f", 2)
            await coordinator.commit(session)
            stats = await coordinator.stats_document()
            assert stats["deployment"] == "multiprocess"
            assert stats["shard_procs"] == 2
            assert stats["commits"] == 1
            assert len(stats["shards"]) == 2
            events = await coordinator.history_events()
            kinds = {event["kind"] for event in events}
            assert "install" in kinds and "commit" in kinds
            await self.teardown(hosts, coordinator)

        run(body())

    def test_on_shard_lost_aborts_only_touching_sessions(self):
        async def body():
            hosts, coordinator = await self.deployment()
            cross = await coordinator.begin("W")      # span {0, 1}
            local = await coordinator.begin("R")      # span {0}
            await coordinator.write(cross, "b", 1)
            coordinator.on_shard_lost(1, "exited with code -9")
            assert not cross.state.live
            assert local.state.live
            assert coordinator.sharding_stats.cascade_aborts == 1
            with pytest.raises(SessionStateError):
                await coordinator.commit(cross)
            await coordinator.commit(local)
            await self.teardown(hosts, coordinator)

        run(body())

    def test_replace_shard_swaps_in_a_fresh_proxy(self):
        async def body():
            hosts, coordinator = await self.deployment()
            coordinator.on_shard_lost(1, "crash")
            replacement = await Host(catalog_two_shards()).start()
            coordinator.replace_shard(1, replacement.proxy)
            assert coordinator.shards[1] is replacement.proxy
            session = await coordinator.begin("W")
            await coordinator.write(session, "b", 5)
            await coordinator.write(session, "f", 6)
            result = await coordinator.commit(session)
            assert result["installed"] == ["b", "f"]
            await coordinator.shutdown()
            for host in hosts + [replacement]:
                await host.stop()

        run(body())
