"""Property-based tests (hypothesis) for the core data structures."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.serialization_graph import SerializationGraph
from repro.engine.event_queue import EventQueue
from repro.model.priorities import assign_rate_monotonic
from repro.model.spec import DUMMY_PRIORITY, TaskSet, TransactionSpec, read, write
from repro.core.ceilings import CeilingTable


# ---------------------------------------------------------------------------
# Event queue
# ---------------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            st.sampled_from(["arrival", "op_done"]),
        ),
        max_size=200,
    )
)
def test_event_queue_pops_sorted_by_time(entries):
    q = EventQueue()
    for time, kind in entries:
        q.push(time, kind, None)
    popped = [q.pop().time for _ in range(len(entries))]
    assert popped == sorted(popped)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1, max_size=100,
    )
)
def test_event_queue_same_time_fifo_within_kind(times):
    q = EventQueue()
    t = max(times)
    for i in range(len(times)):
        q.push(t, "arrival", i)
    payloads = [q.pop().payload for _ in range(len(times))]
    assert payloads == list(range(len(times)))


# ---------------------------------------------------------------------------
# Serialization graph
# ---------------------------------------------------------------------------
_nodes = st.integers(min_value=0, max_value=15).map(lambda i: f"T{i}")


@given(st.lists(st.tuples(_nodes, _nodes), max_size=60))
def test_graph_topological_order_respects_every_edge(edges):
    g = SerializationGraph()
    for src, dst in edges:
        g.add_edge(src, dst)
    order = g.topological_order()
    if order is None:
        assert g.find_cycle() is not None
    else:
        position = {node: i for i, node in enumerate(order)}
        for src, dst in edges:
            if src != dst:
                assert position[src] < position[dst]


@given(st.lists(st.tuples(_nodes, _nodes), max_size=60))
def test_graph_cycle_witness_is_a_real_cycle(edges):
    g = SerializationGraph()
    for src, dst in edges:
        g.add_edge(src, dst)
    cycle = g.find_cycle()
    if cycle is None:
        assert g.is_acyclic()
    else:
        for i, node in enumerate(cycle):
            assert g.has_edge(node, cycle[(i + 1) % len(cycle)])


@given(
    st.lists(st.tuples(_nodes, _nodes), max_size=40),
    st.tuples(_nodes, _nodes),
)
def test_graph_adding_edges_never_unbreaks_a_cycle(edges, extra):
    g = SerializationGraph()
    for src, dst in edges:
        g.add_edge(src, dst)
    had_cycle = g.find_cycle() is not None
    g.add_edge(*extra)
    if had_cycle:
        assert g.find_cycle() is not None


# ---------------------------------------------------------------------------
# Ceilings
# ---------------------------------------------------------------------------
_item_names = st.sampled_from(["a", "b", "c", "d", "e"])


@st.composite
def _tasksets(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    specs = []
    for i in range(n):
        ops = []
        for __ in range(draw(st.integers(min_value=1, max_value=4))):
            item = draw(_item_names)
            if draw(st.booleans()):
                ops.append(read(item, 1.0))
            else:
                ops.append(write(item, 1.0))
        specs.append(
            TransactionSpec(
                f"T{i}", tuple(ops),
                period=float(draw(st.sampled_from([4, 8, 16, 32])) * (i + 1)),
            )
        )
    return assign_rate_monotonic(TaskSet(specs))


@given(_tasksets())
def test_wceil_never_exceeds_aceil(taskset):
    ceilings = CeilingTable(taskset)
    for item in taskset.items:
        assert DUMMY_PRIORITY <= ceilings.wceil(item) <= ceilings.aceil(item)


@given(_tasksets())
def test_ceilings_cover_exactly_the_accessed_items(taskset):
    ceilings = CeilingTable(taskset)
    assert ceilings.items == taskset.items
    for item in taskset.items:
        readers = taskset.readers_of(item)
        writers = taskset.writers_of(item)
        expected_aceil = max(
            (s.priority for s in (*readers, *writers)), default=DUMMY_PRIORITY
        )
        expected_wceil = max(
            (s.priority for s in writers), default=DUMMY_PRIORITY
        )
        assert ceilings.aceil(item) == expected_aceil
        assert ceilings.wceil(item) == expected_wceil


@given(_tasksets())
def test_blocking_sets_monotone_across_protocols(taskset):
    from repro.analysis.blocking import (
        bts_original_pcp,
        bts_pcp_da,
        bts_rw_pcp,
    )

    for name in taskset.names:
        assert bts_pcp_da(taskset, name) <= bts_rw_pcp(taskset, name)
        assert bts_rw_pcp(taskset, name) <= bts_original_pcp(taskset, name)
