"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_protocols_lists_everything(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        for name in ("pcp-da", "rw-pcp", "ccp", "2pl-hp"):
            assert name in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "NOK" in out and "T_L holds" in out

    def test_examples_prints_figures_and_deadlock(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "Example 1 (Figure 1) under rw-pcp" in out
        assert "Example 4 (Figures 4/5) under pcp-da" in out
        assert "deadlock at t=3" in out
        assert "#=executing" in out

    def test_schedulability(self, capsys):
        assert main(["schedulability", "--seed", "1", "--transactions", "4"]) == 0
        out = capsys.readouterr().out
        assert "breakdown utilisation" in out
        assert "BTS_i" in out

    def test_compare(self, capsys):
        assert main([
            "compare", "--seed", "1", "--transactions", "4", "--utilization", "0.4",
        ]) == 0
        out = capsys.readouterr().out
        assert "pcp-da" in out and "2pl-hp" in out
        assert "maxceil" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_export_writes_files(self, tmp_path, capsys):
        assert main([
            "export", "example4", "--protocol", "rw-pcp",
            "--output-dir", str(tmp_path),
        ]) == 0
        names = {p.name for p in tmp_path.iterdir()}
        assert names == {
            "example4_rw-pcp.json",
            "example4_rw-pcp.svg",
            "example4_rw-pcp_segments.csv",
            "example4_rw-pcp_sysceil.csv",
            "example4_rw-pcp_metrics.csv",
        }
        import json

        doc = json.loads((tmp_path / "example4_rw-pcp.json").read_text())
        assert doc["protocol"] == "rw-pcp"

    def test_compare_includes_new_protocols(self, capsys):
        assert main([
            "compare", "--seed", "2", "--transactions", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "occ-bc" in out and "rw-pcp-abort" in out

    def test_export_rejects_unknown_example(self):
        with pytest.raises(SystemExit):
            main(["export", "example9"])

    def test_simulate_with_horizon_flag(self, tmp_path, capsys):
        from repro.workloads.examples import example3_taskset
        from repro.workloads.io import dump_taskset

        path = tmp_path / "ts.json"
        dump_taskset(example3_taskset(), str(path))
        assert main([
            "simulate", str(path), "--horizon", "11", "--protocol", "rw-pcp",
        ]) == 0
        out = capsys.readouterr().out
        assert "MISSED" in out  # Figure 3's deadline miss

    def test_simulate_reports_bad_file(self, tmp_path):
        from repro.exceptions import SpecificationError

        path = tmp_path / "bad.json"
        path.write_text("{broken")
        with pytest.raises(SpecificationError):
            main(["simulate", str(path)])

    def test_schedulability_shows_refined_terms(self, capsys):
        assert main(["schedulability", "--seed", "4", "--transactions", "4"]) == 0
        out = capsys.readouterr().out
        assert "critical-section refinement" in out


class TestReproduceReliabilityFlags:
    """Error paths of the fault-tolerance flags: exit 2, one clean line.

    None of these run any experiment — each must fail during validation,
    before the sweep starts, so they stay fast and leave no artifacts.
    """

    def _err(self, capsys, argv):
        assert main(["reproduce"] + argv) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one line, no traceback
        return err

    def test_negative_retries_rejected(self, capsys):
        err = self._err(capsys, ["--retries", "-1"])
        assert "--retries must be >= 0" in err and "-1" in err

    def test_zero_job_timeout_rejected(self, capsys):
        err = self._err(capsys, ["--job-timeout", "0"])
        assert "--job-timeout must be positive seconds" in err

    def test_resume_conflicts_with_no_cache(self, capsys):
        err = self._err(capsys, ["--resume", "--no-cache"])
        assert "drop --no-cache" in err

    def test_resume_without_manifest(self, capsys, tmp_path):
        err = self._err(capsys, [
            "--resume", "--cache-dir", str(tmp_path / "fresh"),
        ])
        assert "cannot resume" in err and "no sweep manifest" in err

    def test_resume_with_stale_manifest(self, capsys, tmp_path):
        import json

        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        header = json.dumps({"format": 1, "batch": "0" * 64, "total": 9})
        (cache_dir / "sweep-manifest.jsonl").write_text(header + "\n")
        err = self._err(capsys, ["--resume", "--cache-dir", str(cache_dir)])
        assert "cannot resume" in err and "stale" in err

    def test_invalid_fault_spec_rejected(self, capsys):
        err = self._err(capsys, ["--inject-faults", "bogus:table1"])
        assert "invalid --inject-faults spec" in err
        assert "unknown fault kind" in err

    def test_fault_spec_naming_unknown_job(self, capsys, tmp_path):
        err = self._err(capsys, [
            "--no-cache", "--inject-faults", "flaky:nosuchjob",
        ])
        assert "invalid --inject-faults spec" in err
        assert "unknown job" in err

    def test_unwritable_quarantine_dir(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "quarantine").write_text("occupied")  # blocks mkdir
        err = self._err(capsys, ["--cache-dir", str(cache_dir)])
        assert "unusable" in err and "--no-cache" in err


class TestReproduceProfileFlag:
    """``--profile`` must leave the process profiler exactly as it found
    it and still emit its report — on success *and* when the run raises
    (an outer coverage tool or profiler must never be clobbered)."""

    def _sentinel(self):
        def profile_fn(frame, event, arg):  # pragma: no cover - inert
            return None

        return profile_fn

    def test_profile_restores_profiler_on_success(self, capsys, monkeypatch):
        import sys as _sys

        import repro.cli as cli

        monkeypatch.setattr(cli, "_run_reproduce", lambda args: 0)
        sentinel = self._sentinel()
        _sys.setprofile(sentinel)
        try:
            code = main(["reproduce", "--profile", "--no-cache"])
            restored = _sys.getprofile()
        finally:
            _sys.setprofile(None)
        assert code == 0
        assert restored is sentinel
        err = capsys.readouterr().err
        assert "cProfile: hottest functions" in err

    def test_profile_restores_profiler_when_run_raises(
        self, capsys, monkeypatch
    ):
        import sys as _sys

        import repro.cli as cli

        def boom(args):
            raise RuntimeError("run exploded")

        monkeypatch.setattr(cli, "_run_reproduce", boom)
        sentinel = self._sentinel()
        _sys.setprofile(sentinel)
        try:
            with pytest.raises(RuntimeError, match="run exploded"):
                main(["reproduce", "--profile", "--no-cache"])
            restored = _sys.getprofile()
        finally:
            _sys.setprofile(None)
        assert restored is sentinel
        # The report still runs (and must not mask the original error).
        err = capsys.readouterr().err
        assert "cProfile: hottest functions" in err


class TestLoadgenExitCode:
    """`repro loadgen` must exit non-zero when the serializability
    replay fails — the oracle's verdict is the command's verdict."""

    def _patched_main(self, monkeypatch, serializable):
        import repro.service as service
        from repro.service.loadgen import LoadgenConfig, LoadReport

        report = LoadReport(
            config=LoadgenConfig(clients=1, transactions_per_client=1),
            protocol="pcp-da",
            wall_s=1.0,
            serializable=serializable,
            violation="" if serializable else "cycle T1#0 -> T2#0 -> T1#0",
        )

        async def fake_run_loadgen(config, connect):
            return report

        monkeypatch.setattr(service, "run_loadgen", fake_run_loadgen)
        # --connect avoids self-hosting a server; the patched loadgen
        # never dials it, so the whole test is socket-free
        return main(["loadgen", "--connect", "127.0.0.1:1"])

    def test_violation_exits_nonzero(self, monkeypatch, capsys):
        assert self._patched_main(monkeypatch, serializable=False) == 1
        assert "VIOLATION" in capsys.readouterr().out

    def test_serializable_run_exits_zero(self, monkeypatch, capsys):
        assert self._patched_main(monkeypatch, serializable=True) == 0
        assert "serializability: OK" in capsys.readouterr().out


@pytest.mark.stress
class TestStressCommand:
    def test_small_run_writes_ledger_and_exits_zero(self, tmp_path, capsys):
        ledger = tmp_path / "BENCH_stress.json"
        code = main([
            "stress", "--transactions", "120", "--overload", "1.2",
            "--shards", "1", "--parity-seeds", "1",
            "--parity-transactions", "8", "--sim-limit", "60",
            "--ledger", str(ledger),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "decision parity: OK" in out
        assert "simulator oracle: OK" in out
        assert "conservation: OK" in out
        assert ledger.exists()
        import json

        doc = json.loads(ledger.read_text())
        assert doc["mode"] == "stress"
        assert doc["results"][0]["benchmark"] == "stress_loadgen"

    def test_failure_exits_nonzero(self, monkeypatch, capsys):
        # sabotage the parity battery to prove the gate actually gates
        import repro.verify.parity as parity

        def explode(**kwargs):
            raise parity.ParityError("synthetic divergence")

        monkeypatch.setattr(parity, "parity_battery", explode)
        code = main([
            "stress", "--transactions", "60", "--shards", "1",
            "--parity-seeds", "1", "--sim-limit", "40",
        ])
        assert code == 1
        assert "decision parity: FAIL" in capsys.readouterr().out
