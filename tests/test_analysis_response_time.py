"""Unit tests for response-time analysis (repro.analysis.response_time)."""

import pytest

from repro.analysis.response_time import response_times, rta_schedulable
from repro.analysis.rm_bound import rm_schedulable
from repro.exceptions import AnalysisError
from repro.model.priorities import assign_by_order
from repro.model.spec import TransactionSpec, compute, read, write


def _periodic(name, c, period):
    return TransactionSpec(name, (compute(c),), period=period)


class TestResponseTimes:
    def test_highest_priority_is_c_plus_b(self):
        ts = assign_by_order([_periodic("A", 2.0, 10.0), _periodic("B", 3.0, 20.0)])
        times = response_times(ts)
        assert times["A"] == 2.0
        # B: 3 + one preemption by A = 5.
        assert times["B"] == 5.0

    def test_multiple_preemptions_counted(self):
        ts = assign_by_order([_periodic("A", 2.0, 5.0), _periodic("B", 5.0, 20.0)])
        times = response_times(ts)
        # R_B: 5 + ceil(R/5)*2 -> R=5+2*2=9 -> ceil(9/5)=2 -> 9. fixpoint 9.
        assert times["B"] == 9.0

    def test_blocking_term_added(self):
        high = TransactionSpec("H", (write("x", 1.0),), period=10.0)
        low = TransactionSpec("L", (read("x", 4.0),), period=40.0)
        ts = assign_by_order([high, low])
        times = response_times(ts, "pcp-da")
        assert times["H"] == 1.0 + 4.0  # B_H = C_L

    def test_unschedulable_reports_inf_or_overrun(self):
        ts = assign_by_order([_periodic("A", 6.0, 10.0), _periodic("B", 6.0, 12.0)])
        assert not rta_schedulable(ts)

    def test_exact_fit_is_schedulable(self):
        ts = assign_by_order([_periodic("A", 5.0, 10.0), _periodic("B", 5.0, 20.0)])
        # R_B = 5 + ceil(R/10)*5: R=10 -> ceil(10/10)=1 -> 10. Fixpoint 10...
        # interference: ceil((10-eps)/10)=1 -> R=10 <= 20.
        assert rta_schedulable(ts)
        assert response_times(ts)["B"] == 10.0

    def test_requires_periods(self):
        ts = assign_by_order([TransactionSpec("A", (compute(1.0),))])
        with pytest.raises(AnalysisError):
            response_times(ts)

    def test_rta_dominates_rm_bound(self):
        """Everything the utilisation bound accepts, RTA accepts too."""
        from repro.workloads.generator import WorkloadConfig, generate_taskset

        for seed in range(15):
            ts = generate_taskset(
                WorkloadConfig(
                    n_transactions=5, n_items=6, seed=seed,
                    target_utilization=0.65, write_probability=0.4,
                )
            )
            for protocol in ("pcp-da", "rw-pcp"):
                if rm_schedulable(ts, protocol):
                    assert rta_schedulable(ts, protocol), (
                        f"seed={seed} protocol={protocol}: RM bound accepted "
                        "but RTA rejected - RTA must dominate"
                    )
