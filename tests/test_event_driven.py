"""Tests for the event-driven wakeup paths (no timer-driven progress).

The coordinator used to make progress by polling: parked gate/guard
waiters re-checked their predecessor sets every ``sweep_interval_s``.
These tests pin the replacement — shard churn notifications wake exactly
the waiters whose constraints changed — by running every blocking
scenario with a *one hour* sweep interval: if any path still needed the
timer, the test would hang far past its ``wait_for`` deadline.

The manager-side counterpart is covered the same way: the grant queue
re-decides only the waiters the drained churn can affect (item touched,
blamed job released, or own priority moved), and ``_transitive_preds``
memoization is dirtied exactly on constraint-graph edits.

All socket-free; part of ``make verify-sharding``'s tier.
"""

import asyncio

import pytest

from repro.exceptions import TransactionAborted
from repro.model.priorities import assign_by_order
from repro.model.spec import TaskSet, TransactionSpec, read, write
from repro.service import LockManager, ShardedLockManager
from repro.service.manager import SessionState

#: Long enough that any test relying on the timer hangs its wait_for.
HOUR = 3600.0


def catalog_two_shards() -> TaskSet:
    """Items {a, b} on shard 0, {f} on shard 1 (range over 2)."""
    r = TransactionSpec("R", (read("b", 1.0),))
    rf = TransactionSpec("RF", (read("f", 1.0), write("a", 1.0)))
    w = TransactionSpec("W", (write("b", 1.0), write("f", 1.0)))
    return assign_by_order([r, rf, w])


def make_manager(**kwargs) -> ShardedLockManager:
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("partitioner", "range")
    catalog = kwargs.pop("catalog", None) or catalog_two_shards()
    return ShardedLockManager(catalog, "pcp-da", None, **kwargs)


def run(coro):
    return asyncio.run(coro)


async def settle(steps: int = 5) -> None:
    for _ in range(steps):
        await asyncio.sleep(0)


class TestGateWakeupOnNotification:
    def test_gate_opens_on_commit_without_sweep_timer(self):
        async def body():
            mgr = make_manager(sweep_interval_s=HOUR)
            writer = await mgr.begin("W")
            await mgr.write(writer, "b", "new")
            await mgr.write(writer, "f", "new")
            reader = await mgr.begin("R")
            await mgr.read(reader, "b")  # R ≺ W on shard 0
            commit_task = asyncio.ensure_future(mgr.commit(writer))
            await settle()
            assert not commit_task.done()
            assert mgr.sharding_stats.gate_waits == 1
            await mgr.commit(reader)
            # Only the commit's "finish" notification can open the gate
            # inside the deadline: the failsafe timer is an hour away.
            await asyncio.wait_for(commit_task, timeout=5.0)
            assert writer.state is SessionState.COMMITTED
            await mgr.shutdown()

        run(body())

    def test_gate_opens_on_abort_without_sweep_timer(self):
        async def body():
            mgr = make_manager(sweep_interval_s=HOUR)
            writer = await mgr.begin("W")
            await mgr.write(writer, "b", "new")
            await mgr.write(writer, "f", "new")
            reader = await mgr.begin("R")
            await mgr.read(reader, "b")
            commit_task = asyncio.ensure_future(mgr.commit(writer))
            await settle()
            assert not commit_task.done()
            await mgr.abort(reader, "client")
            await asyncio.wait_for(commit_task, timeout=5.0)
            assert writer.state is SessionState.COMMITTED
            await mgr.shutdown()

        run(body())

    def test_gate_park_time_lands_in_gate_histogram(self):
        async def body():
            mgr = make_manager(sweep_interval_s=HOUR)
            writer = await mgr.begin("W")
            await mgr.write(writer, "b", "new")
            await mgr.write(writer, "f", "new")
            reader = await mgr.begin("R")
            await mgr.read(reader, "b")
            commit_task = asyncio.ensure_future(mgr.commit(writer))
            await settle()
            await mgr.commit(reader)
            await asyncio.wait_for(commit_task, timeout=5.0)
            # The park is accounted separately from shard lock waits …
            assert mgr.sharding_stats.gate_wait.total == 1
            assert mgr.sharding_stats.guard_wait.total == 0
            doc = mgr.stats_document()
            assert doc["coordinator"]["gate_wait"]["total"] == 1
            # … and no longer folded into the merged lock_wait histogram
            # (no shard-side lock denial happened in this scenario).
            assert doc["lock_wait"]["total"] == 0
            await mgr.shutdown()

        run(body())


class TestGuardWakeupOnNotification:
    def test_guard_lifts_on_predecessor_finish_without_sweep_timer(self):
        async def body():
            # B ≺ A recorded on shard 1 only; A's read of a on shard 0
            # must park at the coordinator guard until B finishes — woken
            # by B's terminal notification, not by the (hour-long) timer.
            a = TransactionSpec("A", (write("e", 1.0), read("a", 1.0)))
            b = TransactionSpec("B", (read("e", 1.0), write("a", 1.0)))
            mgr = ShardedLockManager(
                assign_by_order([b, a]), "pcp-da",
                shards=2, partitioner="range", sweep_interval_s=HOUR,
            )
            sa = await mgr.begin("A")
            await mgr.write(sa, "e", "a-val")
            sb = await mgr.begin("B")
            await mgr.read(sb, "e")
            await mgr.write(sb, "a", "b-val")
            read_task = asyncio.ensure_future(mgr.read(sa, "a"))
            await settle()
            assert not read_task.done()
            assert mgr.sharding_stats.guard_waits == 1
            await mgr.commit(sb)
            value = await asyncio.wait_for(read_task, timeout=5.0)
            assert value == "b-val"
            assert mgr.sharding_stats.guard_wait.total == 1
            await mgr.commit(sa)
            await mgr.shutdown()

        run(body())


class TestEventDrivenDeadlockDetection:
    def test_cross_shard_deadlock_found_without_sweep_timer(self):
        async def body():
            # The cycle exists only in the union of the two shards'
            # wait-for edges; each new wait schedules a coalesced
            # deadlock pass, so detection must not need the hour-long
            # failsafe timer.
            t1 = TransactionSpec("T1", (write("a", 1.0), write("e", 1.0)))
            t2 = TransactionSpec("T2", (write("e", 1.0), write("a", 1.0)))
            mgr = ShardedLockManager(
                assign_by_order([t1, t2]), "2pl",
                shards=2, partitioner="range", sweep_interval_s=HOUR,
            )
            s1 = await mgr.begin("T1")
            s2 = await mgr.begin("T2")
            await mgr.write(s1, "a", 1)
            await mgr.write(s2, "e", 2)
            blocked_1 = asyncio.ensure_future(mgr.write(s1, "e", 1))
            await settle()
            blocked_2 = asyncio.ensure_future(mgr.write(s2, "a", 2))
            outcomes = await asyncio.wait_for(
                asyncio.gather(blocked_1, blocked_2, return_exceptions=True),
                timeout=5.0,
            )
            aborted = [o for o in outcomes
                       if isinstance(o, TransactionAborted)]
            assert len(aborted) == 1
            assert "cross-shard deadlock victim" in str(aborted[0])
            assert mgr.sharding_stats.cross_shard_deadlocks == 1
            await mgr.commit(s1)
            await mgr.shutdown()

        run(body())

    def test_sweep_retained_as_failsafe_only(self):
        # The timer still exists but is clamped to a ≥1s failsafe floor:
        # even the pinned 10ms ctor argument cannot make waiters poll.
        mgr = make_manager(sweep_interval_s=0.01)
        assert mgr._failsafe_interval == 1.0
        assert callable(mgr._sweep)  # lost-notification backstop
        run(mgr.shutdown())

        slow = make_manager(sweep_interval_s=HOUR)
        assert slow._failsafe_interval == HOUR
        run(slow.shutdown())


class TestPartialRedecide:
    """The grant queue re-decides only churn-affected waiters."""

    @staticmethod
    def catalog_disjoint() -> TaskSet:
        # Readers outrank writers so running priorities stay put and the
        # only re-decide triggers are item churn and blamed-job churn.
        ra = TransactionSpec("RA", (read("a", 1.0),))
        rb = TransactionSpec("RB", (read("b", 1.0),))
        wa = TransactionSpec("WA", (write("a", 1.0),))
        wb = TransactionSpec("WB", (write("b", 1.0),))
        return assign_by_order([ra, rb, wa, wb])

    def test_release_redecides_only_waiters_on_churned_item(self):
        async def body():
            mgr = LockManager(self.catalog_disjoint(), "pcp-da")
            ra = await mgr.begin("RA")
            rb = await mgr.begin("RB")
            await mgr.read(ra, "a")
            await mgr.read(rb, "b")
            wa = await mgr.begin("WA")
            wb = await mgr.begin("WB")
            blocked_a = asyncio.ensure_future(mgr.write(wa, "a", 1))
            blocked_b = asyncio.ensure_future(mgr.write(wb, "b", 2))
            await settle()
            assert wa.state is SessionState.WAITING
            assert wb.state is SessionState.WAITING

            decided = []
            inner = mgr._decide_queue

            def recording(ordered):
                decided.extend(w.session.name for w in ordered)
                return inner(ordered)

            mgr._decide_queue = recording
            # RA's commit churns item a and job RA: WA is a candidate on
            # both counts; WB (parked on b, blaming RB) is untouched and
            # must not be re-decided.
            await mgr.commit(ra)
            await asyncio.wait_for(blocked_a, timeout=5.0)
            assert set(decided) == {"WA#0"}
            assert wb.state is SessionState.WAITING
            assert not blocked_b.done()

            decided.clear()
            await mgr.commit(rb)
            await asyncio.wait_for(blocked_b, timeout=5.0)
            assert set(decided) == {"WB#0"}
            await mgr.commit(wa)
            await mgr.commit(wb)
            await mgr.shutdown()

        run(body())

    def test_item_waiter_index_tracks_parks(self):
        async def body():
            mgr = LockManager(self.catalog_disjoint(), "pcp-da")
            ra = await mgr.begin("RA")
            await mgr.read(ra, "a")
            wa = await mgr.begin("WA")
            blocked = asyncio.ensure_future(mgr.write(wa, "a", 1))
            await settle()
            assert wa in mgr._item_waiters["a"]
            await mgr.commit(ra)
            await asyncio.wait_for(blocked, timeout=5.0)
            assert "a" not in mgr._item_waiters  # unindexed on grant
            await mgr.commit(wa)
            await mgr.shutdown()

        run(body())


class TestTransitivePredsMemo:
    @staticmethod
    def catalog_rw() -> TaskSet:
        r = TransactionSpec("R", (read("x", 1.0),))
        w = TransactionSpec("W", (write("x", 1.0),))
        return assign_by_order([r, w])  # R outranks W → read passes

    def test_memo_invalidated_on_edge_add_and_drop(self):
        async def body():
            mgr = LockManager(self.catalog_rw(), "pcp-da")
            sw = await mgr.begin("W")
            await mgr.write(sw, "x", 1)
            sr = await mgr.begin("R")
            # Prime the memo before any constraint exists.
            assert mgr._transitive_preds(sw.job) == set()
            assert sw.job in mgr._preds_cache
            # The LC3/LC4 read past W's write lock adds R ≺ W — the add
            # must dirty the whole cache …
            await mgr.read(sr, "x")
            assert sw.job not in mgr._preds_cache
            assert mgr._transitive_preds(sw.job) == {sr.job}
            assert mgr._preds_cache[sw.job] == {sr.job}
            # … and R's terminal transition drops the edge, dirtying it
            # again.
            await mgr.commit(sr)
            assert sw.job not in mgr._preds_cache
            assert mgr._transitive_preds(sw.job) == set()
            await mgr.commit(sw)
            await mgr.shutdown()

        run(body())


class TestShardScalingReport:
    """Units for the bench_compare --shard-scaling gate (satellite of the
    event-driven coordinator work: the gate is what keeps multi-shard
    from quietly regressing below single-shard again)."""

    @staticmethod
    def ledger(rows):
        return {"results": [
            {"benchmark": "stress_loadgen", "protocol": proto,
             "events": events, "events_per_sec": rate}
            for proto, events, rate in rows
        ]}

    def test_scaling_ok_and_regression(self):
        from benchmarks.bench_compare import (
            render_shard_scaling,
            shard_scaling_report,
        )

        good = shard_scaling_report(self.ledger([
            ("pcp-da@1sh", 1000, 100.0),
            ("pcp-da@4sh", 2500, 250.0),
        ]))
        assert good["ok"]
        assert good["rows"][0]["ratio"] == pytest.approx(2.5)
        assert "OK" in render_shard_scaling(good)

        bad = shard_scaling_report(self.ledger([
            ("pcp-da@1sh", 1000, 100.0),
            ("pcp-da@4sh", 500, 50.0),
        ]))
        assert not bad["ok"]
        assert bad["rows"][0]["regressed"]
        rendered = render_shard_scaling(bad)
        assert "REGRESSION" in rendered and "FAIL" in rendered

    def test_threshold_tolerance_and_last_row_wins(self):
        from benchmarks.bench_compare import shard_scaling_report

        # 5% below the 1sh baseline passes the default 10% tolerance.
        close = shard_scaling_report(self.ledger([
            ("pcp-da@1sh", 1000, 100.0),
            ("pcp-da@2sh", 950, 95.0),
        ]))
        assert close["ok"]
        # Append-only trend ledger: the freshest duplicate row wins.
        rerun = shard_scaling_report(self.ledger([
            ("pcp-da@1sh", 1000, 100.0),
            ("pcp-da@4sh", 100, 10.0),
            ("pcp-da@4sh", 3000, 300.0),
        ]))
        assert rerun["ok"]
        assert rerun["rows"][0]["head_events_per_sec"] == 300.0

    def test_unmatched_and_empty_ledgers(self):
        from benchmarks.bench_compare import (
            render_shard_scaling,
            shard_scaling_report,
        )

        orphan = shard_scaling_report(self.ledger([
            ("2pl@4sh", 1000, 100.0),
        ]))
        assert orphan["unmatched"] == ["2pl@4sh"]
        assert orphan["empty"] and not orphan["ok"]
        assert "no 1-shard baseline" in render_shard_scaling(orphan)

        empty = shard_scaling_report({"results": []})
        assert empty["empty"] and not empty["ok"]
        assert "no comparable" in render_shard_scaling(empty)
