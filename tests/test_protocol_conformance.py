"""Protocol conformance kit: one scenario matrix, every protocol.

Any registered protocol — including future ones — must survive these
scenarios without corrupting engine state, deadlocking unexpectedly, or
producing a non-serializable history.  The kit is deliberately protocol-
agnostic: it asserts only universal contracts (commit-or-drop, history
consistency, lock hygiene), not protocol-specific schedules.
"""

import pytest

from repro.engine.interfaces import InstallPolicy
from repro.engine.job import JobState
from repro.engine.simulator import SimConfig, Simulator
from repro.model.spec import TransactionSpec, compute, read, write
from repro.protocols import available_protocols, make_protocol
from repro.verify import assert_serializable
from repro.workloads.scenarios import all_scenarios

#: weak-pcp-da is excluded: it exists to deadlock.
PROTOCOLS = tuple(p for p in available_protocols() if p != "weak-pcp-da")

SCENARIOS = all_scenarios()


def _run(protocol_name, taskset_or_builder, **config_kwargs):
    taskset = (
        taskset_or_builder()
        if callable(taskset_or_builder)
        else taskset_or_builder
    )
    config = SimConfig(deadlock_action="abort_lowest", **config_kwargs)
    simulator = Simulator(taskset, make_protocol(protocol_name), config)
    return simulator, simulator.run()


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
class TestConformanceMatrix:
    def test_everyone_commits(self, protocol, scenario):
        __, result = _run(protocol, SCENARIOS[scenario])
        for job in result.jobs:
            assert job.state is JobState.COMMITTED, (
                f"{protocol}/{scenario}: {job.name} ended {job.state}"
            )

    def test_history_serializable(self, protocol, scenario):
        __, result = _run(protocol, SCENARIOS[scenario])
        assert_serializable(result)

    def test_value_replay_for_deferred_protocols(self, protocol, scenario):
        from repro.verify import assert_value_replay_consistent

        if make_protocol(protocol).install_policy is not InstallPolicy.AT_COMMIT:
            pytest.skip("value replay applies to deferred-update runs only")
        __, result = _run(protocol, SCENARIOS[scenario])
        assert_value_replay_consistent(result)

    def test_all_locks_released_at_the_end(self, protocol, scenario):
        simulator, result = _run(protocol, SCENARIOS[scenario])
        for job in result.jobs:
            assert simulator.table.items_held_by(job) == {}, (
                f"{protocol}/{scenario}: {job.name} leaked locks"
            )

    def test_no_dangling_waits(self, protocol, scenario):
        simulator, __ = _run(protocol, SCENARIOS[scenario])
        assert simulator.waits.waiters() == ()

    def test_writes_reach_the_database(self, protocol, scenario):
        __, result = _run(protocol, SCENARIOS[scenario])
        written_items = set()
        for spec in result.taskset:
            written_items |= spec.write_set
        for item in written_items:
            version = result.database.read_committed(item)
            assert version.writer is not None, (
                f"{protocol}/{scenario}: {item} never received a commit"
            )

    def test_final_value_matches_last_committed_writer(self, protocol, scenario):
        __, result = _run(protocol, SCENARIOS[scenario])
        commit_order = {
            name: index
            for index, name in enumerate(result.history.commit_order())
        }
        for item in result.database.item_names:
            versions = result.database[item].versions
            committed_writers = [
                v.writer for v in versions
                if v.writer is not None and v.writer in commit_order
            ]
            if not committed_writers:
                continue
            final = result.database.read_committed(item).writer
            assert final == committed_writers[-1]


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestConfigurationMatrix:
    def test_with_lock_overhead(self, protocol):
        __, result = _run(
            protocol, SCENARIOS["same_item_storm"], lock_overhead=0.25
        )
        assert_serializable(result)
        assert all(j.state is JobState.COMMITTED for j in result.jobs)

    def test_with_context_switch_overhead(self, protocol):
        __, result = _run(
            protocol, SCENARIOS["crossed_pattern"],
            context_switch_overhead=0.25,
        )
        assert_serializable(result)

    def test_with_horizon_truncation(self, protocol):
        simulator, result = _run(
            protocol, SCENARIOS["chain"], horizon=2.0
        )
        # Truncated runs must still be internally consistent.
        assert_serializable(result)
        assert result.end_time == 2.0

    def test_firm_deadlines_where_supported(self, protocol):
        from repro.model.priorities import assign_by_order

        instance = make_protocol(protocol)
        specs = assign_by_order([
            TransactionSpec(
                "H", (read("a", 1.0),), offset=1.0, period=10.0, deadline=2.0
            ),
            TransactionSpec(
                "L", (write("a", 1.0), compute(3.0)), offset=0.0,
                period=10.0, deadline=3.0,
            ),
        ])
        if instance.install_policy is InstallPolicy.AT_COMMIT:
            __, result = _run(protocol, specs, on_miss="abort", horizon=10.0)
            assert_serializable(result)
        else:
            from repro.exceptions import SpecificationError

            with pytest.raises(SpecificationError):
                _run(protocol, specs, on_miss="abort", horizon=10.0)
