"""Unit tests for LC1..LC4 (repro.core.locking_conditions).

These tests drive the predicates directly against hand-built lock-table
states, pinning each condition to the paper's definition.
"""

import pytest

from repro.core.ceilings import CeilingTable
from repro.core.locking_conditions import (
    ceiling_holders,
    evaluate_conditions,
    system_ceiling,
)
from repro.engine.job import Job
from repro.engine.lock_table import LockTable
from repro.model.priorities import assign_by_order
from repro.model.spec import DUMMY_PRIORITY, LockMode, TransactionSpec, read, write


def _setup():
    """Four transactions mirroring Example 4's shape.

    T1: Read(x); T2: Write(y); T3: Read(z), Write(z); T4: Read(y), Write(x).
    Priorities: T1=4 > T2=3 > T3=2 > T4=1.
    """
    ts = assign_by_order([
        TransactionSpec("T1", (read("x"),)),
        TransactionSpec("T2", (write("y"),)),
        TransactionSpec("T3", (read("z"), write("z"))),
        TransactionSpec("T4", (read("y"), write("x"))),
    ])
    jobs = {name: Job(ts[name], 0, 0.0) for name in ts.names}
    return ts, jobs, LockTable(), CeilingTable(ts)


class TestSystemCeiling:
    def test_dummy_when_nothing_read_locked(self):
        _, jobs, table, ceilings = _setup()
        assert system_ceiling(table, ceilings) == DUMMY_PRIORITY
        assert ceiling_holders(table, ceilings) == ()

    def test_write_locks_raise_no_ceiling(self):
        """Lemma 1: write operations are preemptable."""
        _, jobs, table, ceilings = _setup()
        table.grant(jobs["T4"], "x", LockMode.WRITE)
        assert system_ceiling(table, ceilings) == DUMMY_PRIORITY

    def test_read_lock_puts_wceil_in_effect(self):
        _, jobs, table, ceilings = _setup()
        table.grant(jobs["T4"], "y", LockMode.READ)
        assert system_ceiling(table, ceilings) == 3  # Wceil(y) = P2

    def test_exclude_own_locks(self):
        _, jobs, table, ceilings = _setup()
        table.grant(jobs["T4"], "y", LockMode.READ)
        assert system_ceiling(table, ceilings, exclude=jobs["T4"]) == DUMMY_PRIORITY

    def test_tstar_is_ceiling_holder(self):
        _, jobs, table, ceilings = _setup()
        table.grant(jobs["T4"], "y", LockMode.READ)
        assert ceiling_holders(table, ceilings) == (jobs["T4"],)


class TestLC1:
    def test_grant_when_no_readers(self):
        _, jobs, table, ceilings = _setup()
        report = evaluate_conditions(
            jobs["T4"], "x", LockMode.WRITE, table, ceilings
        )
        assert report.granted and report.rule == "LC1"

    def test_grant_despite_other_writer(self):
        """Case 3: concurrent write locks are compatible."""
        _, jobs, table, ceilings = _setup()
        table.grant(jobs["T2"], "y", LockMode.WRITE)
        report = evaluate_conditions(
            jobs["T4"], "y", LockMode.WRITE, table, ceilings
        )
        # T4 doesn't write y in its declared set, but the predicate only
        # looks at lock state: no readers on y -> LC1.
        assert report.granted and report.rule == "LC1"

    def test_denied_when_read_locked_by_other(self):
        _, jobs, table, ceilings = _setup()
        table.grant(jobs["T1"], "x", LockMode.READ)
        report = evaluate_conditions(
            jobs["T4"], "x", LockMode.WRITE, table, ceilings
        )
        assert not report.granted
        assert report.lc1 is False
        assert report.blockers == (jobs["T1"],)
        assert "conflict blocking" in report.reason

    def test_own_read_lock_does_not_block_upgrade(self):
        _, jobs, table, ceilings = _setup()
        table.grant(jobs["T3"], "z", LockMode.READ)
        report = evaluate_conditions(
            jobs["T3"], "z", LockMode.WRITE, table, ceilings
        )
        assert report.granted and report.rule == "LC1"


class TestLC2:
    def test_grant_when_priority_above_sysceil(self):
        _, jobs, table, ceilings = _setup()
        table.grant(jobs["T4"], "y", LockMode.READ)  # Sysceil = P2 = 3
        report = evaluate_conditions(
            jobs["T1"], "x", LockMode.READ, table, ceilings
        )
        assert report.granted and report.rule == "LC2"
        assert report.sysceil == 3

    def test_denied_at_equal_priority(self):
        _, jobs, table, ceilings = _setup()
        table.grant(jobs["T4"], "y", LockMode.READ)  # Sysceil = P2
        report = evaluate_conditions(
            jobs["T2"], "y", LockMode.READ, table, ceilings
        )
        # P2 == Sysceil: LC2 false.  LC3 false (P2 !> HPW(y)=P2).  LC4:
        # y IS read-locked by T4 -> false.  Denied, blocker T* = T4.
        assert not report.granted
        assert report.lc2 is False
        assert report.blockers == (jobs["T4"],)
        assert "ceiling blocking" in report.reason


class TestLC3:
    def test_grant_above_hpw_when_tstar_does_not_write_item(self):
        _, jobs, table, ceilings = _setup()
        table.grant(jobs["T4"], "y", LockMode.READ)   # T* = T4, Sysceil = 3
        # T3 requests read z: P3=2 < Sysceil -> LC2 false; HPW(z)=P3=2,
        # so LC3 (strict >) is false but LC4 applies (see below).  To
        # exercise LC3 we use T2 reading z: P2=3 > HPW(z)=2 and
        # z not in WriteSet(T4)... but LC2 would also be false only if
        # Sysceil >= P2 -> Sysceil = 3 = P2: LC2 false, LC3 true.
        report = evaluate_conditions(
            jobs["T2"], "z", LockMode.READ, table, ceilings
        )
        assert report.granted and report.rule == "LC3"

    def test_denied_when_item_in_tstar_write_set(self):
        _, jobs, table, ceilings = _setup()
        table.grant(jobs["T3"], "z", LockMode.READ)   # T* = T3, Sysceil = P3=2
        # T4 (priority 1) requests read x... LC2: 1 > 2 false.
        # HPW(x) = P4 = 1, so LC3 strict > fails; use a requester above:
        # actually x in WriteSet(T4) itself; craft: T4 reads z? z in
        # WriteSet(T3) = {z} -> LC3 condition fails for any requester.
        report = evaluate_conditions(
            jobs["T4"], "z", LockMode.READ, table, ceilings
        )
        assert not report.granted
        assert report.blockers == (jobs["T3"],)

    def test_lc3_can_be_disabled(self):
        _, jobs, table, ceilings = _setup()
        table.grant(jobs["T4"], "y", LockMode.READ)
        report = evaluate_conditions(
            jobs["T2"], "z", LockMode.READ, table, ceilings, enable_lc3=False
        )
        assert not report.granted


class TestLC4:
    def test_paper_example4_grant(self):
        """The exact LC4 grant of Example 4 at t=1."""
        _, jobs, table, ceilings = _setup()
        table.grant(jobs["T4"], "y", LockMode.READ)
        report = evaluate_conditions(
            jobs["T3"], "z", LockMode.READ, table, ceilings
        )
        assert report.granted and report.rule == "LC4"
        assert report.lc2 is False and report.lc3 is False
        assert report.tstar == (jobs["T4"],)

    def test_denied_when_item_read_locked_by_other(self):
        _, jobs, table, ceilings = _setup()
        table.grant(jobs["T4"], "y", LockMode.READ)
        table.grant(jobs["T2"], "z", LockMode.READ)  # someone already reads z
        report = evaluate_conditions(
            jobs["T3"], "z", LockMode.READ, table, ceilings
        )
        assert not report.granted
        assert report.lc4 is False

    def test_denied_when_tstar_read_overlaps_requester_writes(self):
        """LC4's explicit DataRead(T*) ∩ WriteSet(T_i) check."""
        _, jobs, table, ceilings = _setup()
        table.grant(jobs["T4"], "y", LockMode.READ)
        jobs["T4"].data_read.add("z")  # pretend T* has read z
        report = evaluate_conditions(
            jobs["T3"], "z", LockMode.READ, table, ceilings
        )
        # WriteSet(T3) = {z}; DataRead(T4) now contains z -> LC4 false.
        assert not report.granted

    def test_lc4_can_be_disabled(self):
        _, jobs, table, ceilings = _setup()
        table.grant(jobs["T4"], "y", LockMode.READ)
        report = evaluate_conditions(
            jobs["T3"], "z", LockMode.READ, table, ceilings, enable_lc4=False
        )
        assert not report.granted


class TestFootnoteCondition:
    def test_read_of_write_locked_item_checks_footnote(self):
        _, jobs, table, ceilings = _setup()
        table.grant(jobs["T4"], "x", LockMode.WRITE)
        jobs["T4"].data_read.add("x_read_marker")
        # T1 writes nothing: footnote holds, LC2 grants (Sysceil dummy).
        report = evaluate_conditions(
            jobs["T1"], "x", LockMode.READ, table, ceilings
        )
        assert report.granted and report.footnote_ok

    def test_footnote_violation_denies_with_writer_blamed(self):
        _, jobs, table, ceilings = _setup()
        table.grant(jobs["T2"], "x", LockMode.WRITE)  # T2 write-locks x
        jobs["T2"].data_read.add("z")                 # and has read z
        # T3 writes z: DataRead(T2) ∩ WriteSet(T3) = {z} != empty set.
        report = evaluate_conditions(
            jobs["T3"], "x", LockMode.READ, table, ceilings
        )
        assert not report.granted
        assert not report.footnote_ok
        assert report.footnote_violators == (jobs["T2"],)
        assert report.blockers == (jobs["T2"],)
