"""Behavioural tests for the non-ceiling baselines: the original PCP,
PIP-2PL, plain 2PL, and 2PL-HP."""

import pytest

from repro.engine.simulator import SimConfig, Simulator
from repro.exceptions import DeadlockError
from repro.model.priorities import assign_by_order
from repro.model.spec import TransactionSpec, compute, read, write
from repro.protocols import make_protocol
from repro.verify import (
    assert_deadlock_free,
    assert_serializable,
    assert_single_blocking,
)
from tests.conftest import run


def _ts(*specs):
    return assign_by_order(list(specs))


def _deadlock_prone_ts(read_len=2.0):
    """Classic crossed access pattern: H: R(y),W(x); L: R(x),W(y)."""
    return _ts(
        TransactionSpec("H", (read("y", 1.0), write("x", 1.0)), offset=1.0),
        TransactionSpec("L", (read("x", read_len), write("y", 1.0)), offset=0.0),
    )


class TestOriginalPCP:
    def test_no_concurrent_readers(self):
        """Exclusive access: even read/read is serialized."""
        ts = _ts(
            TransactionSpec("H", (read("x", 1.0),), offset=1.0),
            TransactionSpec("L", (read("x", 3.0),), offset=0.0),
        )
        result = run(ts, "pcp")
        assert result.job("H#0").total_blocking_time() == 2.0

    def test_deadlock_free_on_crossed_pattern(self):
        result = run(_deadlock_prone_ts(), "pcp")
        assert_deadlock_free(result)
        assert_serializable(result)

    def test_single_blocking_holds(self):
        result = run(_deadlock_prone_ts(), "pcp")
        assert_single_blocking(result)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_workloads(self, seed):
        from repro.workloads.generator import WorkloadConfig, generate_taskset

        ts = generate_taskset(
            WorkloadConfig(n_transactions=5, n_items=5, seed=seed,
                           write_probability=0.5, hot_access_probability=0.9)
        )
        result = Simulator(ts, make_protocol("pcp"), SimConfig(horizon=600.0)).run()
        assert_deadlock_free(result)
        assert_single_blocking(result)
        assert_serializable(result)


class TestPIP2PL:
    def test_inheritance_bounds_each_inversion(self):
        ts = _ts(
            TransactionSpec("H", (read("x", 1.0),), offset=1.0),
            TransactionSpec("M", (compute(5.0),), offset=2.0),
            TransactionSpec("L", (write("x", 3.0),), offset=0.0),
        )
        result = run(ts, "pip-2pl")
        # L inherits P_H at t=1, so M cannot interpose: H done at 4.
        assert result.job("H#0").finish_time == 4.0

    def test_deadlocks_on_crossed_pattern(self):
        with pytest.raises(DeadlockError):
            run(_deadlock_prone_ts(), "pip-2pl")

    def test_deadlock_resolved_by_abort(self):
        result = run(
            _deadlock_prone_ts(), "pip-2pl",
            SimConfig(deadlock_action="abort_lowest"),
        )
        assert result.aborted_restarts >= 1
        assert result.job("L#0").restarts >= 1
        assert_serializable(result)  # post-abort history is still CSR

    def test_chained_blocking_possible(self):
        """The defect PCP fixes: H blocked by TWO lower transactions in
        sequence (no single-blocking guarantee)."""
        ts = _ts(
            TransactionSpec("H", (read("x", 1.0), read("y", 1.0)), offset=2.0),
            TransactionSpec("L2", (write("y", 2.5),), offset=1.0),
            TransactionSpec("L1", (write("x", 2.0),), offset=0.0),
        )
        result = run(ts, "pip-2pl")
        blockers = result.job("H#0").distinct_blockers()
        assert blockers == {"L1", "L2"}


class TestPlain2PL:
    def test_unbounded_inversion_without_inheritance(self):
        ts = _ts(
            TransactionSpec("H", (read("x", 1.0),), offset=1.0),
            TransactionSpec("M", (compute(5.0),), offset=2.0),
            TransactionSpec("L", (write("x", 3.0),), offset=0.0),
        )
        result = run(ts, "2pl", SimConfig(deadlock_action="abort_lowest"))
        # M (priority between H and L) runs before L can finish: H's wait
        # stretches to 7 time units.
        assert result.job("H#0").total_blocking_time() == 7.0

    def test_deadlock_detected(self):
        with pytest.raises(DeadlockError):
            run(_deadlock_prone_ts(), "2pl")


class TestTwoPLHP:
    def test_high_priority_aborts_lower_holder(self):
        ts = _ts(
            TransactionSpec("H", (write("x", 1.0),), offset=1.0),
            TransactionSpec("L", (read("x", 3.0),), offset=0.0),
        )
        result = run(ts, "2pl-hp")
        assert result.job("H#0").total_blocking_time() == 0.0
        assert result.job("H#0").finish_time == 2.0
        assert result.job("L#0").restarts == 1
        # L re-executes from scratch: 3 more units after H finishes.
        assert result.job("L#0").finish_time == 5.0
        assert_serializable(result)

    def test_lower_priority_requester_waits(self):
        ts = _ts(
            TransactionSpec("H", (read("x", 3.0),), offset=0.0),
            TransactionSpec("L", (write("x", 1.0),), offset=1.0),
        )
        result = run(ts, "2pl-hp")
        # L can only request after H finishes (single CPU), so no wait is
        # even observed; assert no aborts happened in either direction.
        assert result.aborted_restarts == 0

    def test_wait_when_holder_has_higher_priority(self):
        """Protocol-level check of the Deny branch: a requester must wait
        (without inheritance) when any conflicting holder outranks it.

        On a single CPU this situation cannot arise organically — the
        running job is always the highest-priority active one — so the
        decision procedure is driven directly against a crafted lock-table
        state.
        """
        from repro.engine.interfaces import Deny
        from repro.engine.job import Job
        from repro.engine.lock_table import LockTable
        from repro.model.spec import LockMode

        ts = _ts(
            TransactionSpec("H", (read("x", 1.0),)),
            TransactionSpec("M", (write("x", 1.0),)),
        )
        protocol = make_protocol("2pl-hp")
        table = LockTable()
        protocol.bind(ts, table)
        holder = Job(ts["H"], 0, 0.0)
        requester = Job(ts["M"], 0, 0.0)
        table.grant(holder, "x", LockMode.READ)
        decision = protocol.decide(requester, "x", LockMode.WRITE)
        assert isinstance(decision, Deny)
        assert decision.blockers == (holder,)
        assert decision.inherit is False  # 2PL-HP has no inheritance

    def test_restarted_job_reads_fresh_values(self):
        """The aborted reader re-reads after the writer committed, keeping
        the history serializable."""
        ts = _ts(
            TransactionSpec("H", (write("x", 1.0),), offset=1.0),
            TransactionSpec("L", (read("x", 2.0), write("y", 1.0)), offset=0.0),
        )
        result = run(ts, "2pl-hp")
        reads = [e for e in result.history.committed_reads() if e.job == "L#0"]
        assert len(reads) == 1
        assert reads[0].version_seq > 0  # the version H installed
        assert_serializable(result)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_workloads_stay_serializable(self, seed):
        from repro.workloads.generator import WorkloadConfig, generate_taskset

        ts = generate_taskset(
            WorkloadConfig(n_transactions=5, n_items=5, seed=seed,
                           write_probability=0.5, hot_access_probability=0.9)
        )
        result = Simulator(
            ts, make_protocol("2pl-hp"), SimConfig(horizon=600.0)
        ).run()
        assert_deadlock_free(result)
        assert_serializable(result)
