"""Wire v2 tests: hello negotiation, event frames, the shard-op family.

All socket-free (``make verify-procs`` tier): operations dispatch
directly through :func:`repro.service.wire.dispatch_request` against an
in-process :class:`LockManager`, and frames round-trip through the
NDJSON codec.  Every frame type the shard host can emit is encoded and
decoded here — the round-trip battery the wire version bump requires.
"""

import asyncio

import pytest

from repro.exceptions import ProtocolVersionError, ServiceError
from repro.model.priorities import assign_by_order
from repro.model.spec import LockMode, TaskSet, TransactionSpec, read, write
from repro.service import LockManager, ServiceConfig, ShardedLockManager
from repro.service import wire
from repro.trace.recorder import LockEvent, LockOutcome


def catalog_rw() -> TaskSet:
    specs = [
        TransactionSpec("R", (read("x", 1.0),), offset=0.0),
        TransactionSpec("W", (write("x", 1.0), write("y", 1.0)), offset=0.0),
    ]
    return assign_by_order(specs)


def run(coro):
    return asyncio.run(coro)


async def settle(steps: int = 5) -> None:
    for _ in range(steps):
        await asyncio.sleep(0)


async def call(manager, op, **params):
    """Dispatch one op; return the result dict or raise on wire error."""
    response = await wire.dispatch_request(manager, {"id": 1, "op": op,
                                                     **params})
    if response["ok"]:
        return response["result"]
    error = response["error"]
    raise wire.ERROR_TYPES.get(error["kind"], ServiceError)(error["message"])


class TestHello:
    def test_version_is_v2(self):
        assert wire.PROTOCOL_VERSION == "repro-service/2"
        assert wire.FEATURES == frozenset({"events", "shard-ops"})

    def test_hello_grants_requested_intersection(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            result = await call(manager, "hello",
                                version=wire.PROTOCOL_VERSION,
                                features=["events", "time-travel"])
            assert result["version"] == wire.PROTOCOL_VERSION
            assert result["protocol"] == "pcp-da"
            assert result["features"] == ["events"]
            await manager.shutdown()

        run(body())

    def test_hello_no_features_grants_none(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            result = await call(manager, "hello",
                                version=wire.PROTOCOL_VERSION)
            assert result["features"] == []
            await manager.shutdown()

        run(body())

    def test_hello_rejects_old_client_with_version_error(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            with pytest.raises(ProtocolVersionError) as info:
                await call(manager, "hello", version="repro-service/1")
            assert "repro-service/1" in str(info.value)
            assert "repro-service/2" in str(info.value)
            await manager.shutdown()

        run(body())

    def test_hello_rejects_missing_version(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            with pytest.raises(ProtocolVersionError):
                await call(manager, "hello")
            await manager.shutdown()

        run(body())

    def test_version_error_kind_is_stable_on_the_wire(self):
        doc = wire.exception_to_error(3, ProtocolVersionError("era"))
        assert doc["error"]["kind"] == "version"
        assert wire.ERROR_TYPES["version"] is ProtocolVersionError


class TestEventFrames:
    def test_is_event_requires_event_key_and_no_id(self):
        assert wire.is_event({"event": "churn", "kind": "abort", "job": "W#0"})
        assert not wire.is_event({"id": 1, "event": "churn"})
        assert not wire.is_event({"id": 1, "ok": True, "result": {}})

    def test_every_churn_kind_round_trips(self):
        extras = {
            "constraint": {"other": "W#0"},
            "wait": {"blockers": ["W#0", "R#1"]},
            "unwait": {},
            "abort": {"reason": "deadlock victim"},
            "finish": {},
        }
        assert set(extras) == set(wire.CHURN_KINDS)
        for kind, kwargs in extras.items():
            frame = wire.churn_frame(kind, "R#0", **kwargs)
            decoded = wire.decode(wire.encode(frame))
            assert decoded == frame
            assert wire.is_event(decoded)
            assert decoded["kind"] == kind
            assert decoded["job"] == "R#0"
        assert wire.churn_frame("wait", "R#0", blockers=["b", "a"])[
            "blockers"] == ["a", "b"]

    def test_churn_frame_omits_absent_fields(self):
        frame = wire.churn_frame("finish", "W#2")
        assert set(frame) == {"event", "kind", "job"}

    def test_churn_frame_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            wire.churn_frame("promoted", "R#0")

    def test_decision_frame_round_trips(self):
        event = LockEvent(
            time=0.25, job="W#3", item="x", mode=LockMode.WRITE,
            outcome=LockOutcome.GRANTED, rule="HP/2PL", blockers=("R#0",),
        )
        frame = wire.decision_frame(event)
        decoded = wire.decode(wire.encode(frame))
        assert wire.is_event(decoded)
        assert wire.decision_from_frame(decoded) == event

    def test_decision_frame_defaults_blockers(self):
        frame = {"event": "decision", "time": 0.0, "job": "R#0", "item": "x",
                 "mode": "read", "outcome": "granted", "rule": "LC3"}
        assert wire.decision_from_frame(frame).blockers == ()


class TestShardOps:
    def test_begin_accepts_instance_and_seq(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            result = await call(manager, "begin", transaction="R",
                                instance=7, seq=42)
            assert result["name"] == "R#7"
            session = manager.session(result["session"])
            assert session.job.seq == 42
            await manager.shutdown()

        run(body())

    def test_set_seq_overrides_arrival_order(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            result = await call(manager, "begin", transaction="R")
            await call(manager, "set_seq", session=result["session"], seq=99)
            assert manager.session(result["session"]).job.seq == 99
            await manager.shutdown()

        run(body())

    def test_prepare_unprepare_toggle_the_fence(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            w = await call(manager, "begin", transaction="W")
            session = manager.session(w["session"])
            await call(manager, "write", session=w["session"], item="x",
                       value=1)
            result = await call(manager, "prepare", session=w["session"])
            assert result["prepared"] is True
            assert isinstance(result["gate"], list)
            assert session.job in manager._committing
            result = await call(manager, "unprepare", session=w["session"])
            assert result["prepared"] is False
            assert session.job not in manager._committing
            await manager.shutdown()

        run(body())

    def test_commit_fence_parks_reader_until_unprepare(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            w = await call(manager, "begin", transaction="W")
            await call(manager, "write", session=w["session"], item="x",
                       value=1)
            await call(manager, "prepare", session=w["session"])
            r = await call(manager, "begin", transaction="R")
            reader = asyncio.ensure_future(
                call(manager, "read", session=r["session"], item="x")
            )
            await settle()
            # LC3 would let the read pass the write lock; the fence
            # parks it so no new reader ≺ committer constraint can form.
            assert not reader.done()
            await call(manager, "unprepare", session=w["session"])
            await settle()
            assert reader.done()
            await reader
            await manager.shutdown()

        run(body())

    def test_force_abort_over_the_wire(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            r = await call(manager, "begin", transaction="R")
            result = await call(manager, "force_abort", session=r["session"],
                                reason="coordinator victim")
            assert result["aborted"] is True
            session = manager.session(r["session"])
            assert not session.state.live
            assert "coordinator victim" in session.abort_reason
            await manager.shutdown()

        run(body())

    def test_wait_graph_reports_edges(self):
        async def body():
            manager = LockManager(catalog_rw(), "pcp-da")
            w = await call(manager, "begin", transaction="W")
            await call(manager, "write", session=w["session"], item="x",
                       value=1)
            await call(manager, "prepare", session=w["session"])
            r = await call(manager, "begin", transaction="R")
            reader = asyncio.ensure_future(
                call(manager, "read", session=r["session"], item="x")
            )
            await settle()
            edges = (await call(manager, "wait_graph"))["edges"]
            assert edges == {"R#0": ["W#0"]}
            await call(manager, "unprepare", session=w["session"])
            await reader
            await manager.shutdown()

        run(body())

    def test_shard_ops_rejected_by_a_coordinator(self):
        async def body():
            manager = ShardedLockManager(catalog_rw(), "pcp-da", shards=2,
                                         partitioner="hash")
            for op in ("set_seq", "prepare", "unprepare", "force_abort"):
                response = await wire.dispatch_request(
                    manager, {"id": 1, "op": op, "session": 0}
                )
                assert not response["ok"]
                assert response["error"]["kind"] == "bad-request"
                assert "not a shard host" in response["error"]["message"]
            response = await wire.dispatch_request(
                manager, {"id": 1, "op": "wait_graph"}
            )
            assert not response["ok"]
            await manager.shutdown()

        run(body())


class TestMaybeAwait:
    def test_stats_and_history_tolerate_async_introspection(self):
        """A coordinator over remote shards answers stats/history with a
        coroutine; ``_execute`` must await it transparently."""

        class AsyncIntrospection(LockManager):
            def stats_document(self):
                async def fetch():
                    return super(AsyncIntrospection, self).stats_document()
                return fetch()

            def history_events(self):
                async def fetch():
                    return super(AsyncIntrospection, self).history_events()
                return fetch()

        async def body():
            manager = AsyncIntrospection(catalog_rw(), "pcp-da")
            stats = await call(manager, "stats")
            assert stats["protocol"] == "pcp-da"
            history = await call(manager, "history")
            assert history["events"] == []
            await manager.shutdown()

        run(body())
