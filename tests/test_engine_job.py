"""Unit tests for job runtime state (repro.engine.job)."""

import pytest

from repro.engine.job import Job, JobState
from repro.exceptions import SimulationError
from repro.model.spec import LockMode, TransactionSpec, compute, read, write


def _spec(**kwargs):
    defaults = dict(priority=2, period=10.0)
    defaults.update(kwargs)
    return TransactionSpec("T", (read("x"), write("y"), compute(2.0)), **defaults)


class TestJobBasics:
    def test_naming_and_initial_state(self):
        job = Job(_spec(), 3, arrival=30.0)
        assert job.name == "T#3"
        assert job.state is JobState.READY
        assert job.pc == 0
        assert job.op_remaining == 1.0
        assert job.running_priority == job.base_priority == 2

    def test_requires_priority(self):
        spec = TransactionSpec("T", (read("x"),))
        with pytest.raises(SimulationError):
            Job(spec, 0, 0.0)

    def test_current_op_progression(self):
        job = Job(_spec(), 0, 0.0)
        assert job.current_op.item == "x"
        job.pc = 3
        assert job.current_op is None
        assert job.finished_program

    def test_absolute_deadline_and_miss(self):
        job = Job(_spec(period=10.0), 0, arrival=5.0)
        assert job.absolute_deadline == 15.0
        job.finish_time = 15.0
        assert not job.missed_deadline  # finishing exactly on time is a meet
        job.finish_time = 15.5
        assert job.missed_deadline

    def test_unfinished_periodic_job_counts_as_miss(self):
        job = Job(_spec(period=10.0), 0, 0.0)
        assert job.missed_deadline

    def test_aperiodic_job_never_misses(self):
        spec = TransactionSpec("T", (read("x"),), priority=1)
        job = Job(spec, 0, 0.0)
        assert job.absolute_deadline is None
        assert not job.missed_deadline

    def test_response_time(self):
        job = Job(_spec(), 0, arrival=2.0)
        assert job.response_time is None
        job.finish_time = 9.0
        assert job.response_time == 7.0


class TestBlockingBookkeeping:
    def test_block_interval_lifecycle(self):
        job = Job(_spec(), 0, 0.0)
        job.begin_block(1.0, "x", LockMode.READ, ("L#0",), "ceiling")
        job.end_block(4.0)
        assert job.total_blocking_time() == 3.0
        assert job.distinct_blockers() == frozenset({"L"})

    def test_end_block_without_open_interval_rejected(self):
        job = Job(_spec(), 0, 0.0)
        with pytest.raises(SimulationError):
            job.end_block(1.0)

    def test_open_interval_excluded_from_total(self):
        job = Job(_spec(), 0, 0.0)
        job.begin_block(1.0, "x", LockMode.READ, ("L#0",), "r")
        assert job.total_blocking_time() == 0.0

    def test_distinct_blockers_collapse_instances(self):
        job = Job(_spec(), 0, 0.0)
        job.begin_block(1.0, "x", LockMode.READ, ("L#0",), "r")
        job.end_block(2.0)
        job.begin_block(3.0, "y", LockMode.WRITE, ("L#1",), "r")
        job.end_block(4.0)
        assert job.distinct_blockers() == frozenset({"L"})


class TestRestart:
    def test_restart_resets_execution_state(self):
        job = Job(_spec(), 0, 0.0)
        job.pc = 2
        job.op_remaining = 0.5
        job.op_started = True
        job.data_read.add("x")
        job.workspace.buffer_write("y", "v")
        job.running_priority = 9
        job.restart()
        assert job.pc == 0
        assert job.op_remaining == 1.0
        assert not job.op_started
        assert job.data_read == set()
        assert not job.workspace.has_write("y")
        assert job.running_priority == job.base_priority
        assert job.restarts == 1
        assert job.state is JobState.READY


class TestDispatchKey:
    def test_priority_dominates(self):
        high = Job(_spec(priority=5), 0, 10.0)
        low = Job(_spec(priority=1), 0, 0.0)
        assert high.dispatch_key() < low.dispatch_key()

    def test_fifo_within_priority(self):
        first = Job(_spec(), 0, 0.0)
        second = Job(_spec(), 1, 5.0)
        assert first.dispatch_key() < second.dispatch_key()
