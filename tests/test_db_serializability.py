"""Unit tests for the conflict-serializability checker (repro.db.serializability)."""

import pytest

from repro.db.history import History
from repro.db.serializability import (
    build_serialization_graph,
    check_serializable,
    serialization_order,
)
from repro.exceptions import SerializationViolation


def _serial_history():
    """T1 reads x then T2 overwrites x: plain wr/rw order T1 -> ... -> T2."""
    h = History()
    h.record_read("T1#0", "x", 0, 1.0)
    h.record_commit("T1#0", 2.0)
    h.record_install("T2#0", "x", 1, 3.0)
    h.record_commit("T2#0", 3.0)
    return h


class TestBuildGraph:
    def test_rw_edge(self):
        g = build_serialization_graph(_serial_history())
        assert g.has_edge("T1#0", "T2#0")
        assert "rw" in g.edge_labels("T1#0", "T2#0")

    def test_wr_edge(self):
        h = History()
        h.record_install("T1#0", "x", 1, 1.0)
        h.record_commit("T1#0", 1.0)
        h.record_read("T2#0", "x", 1, 2.0)
        h.record_commit("T2#0", 3.0)
        g = build_serialization_graph(h)
        assert g.edge_labels("T1#0", "T2#0") == ("wr",)

    def test_ww_edges_follow_install_order(self):
        h = History()
        h.record_install("T1#0", "x", 1, 1.0)
        h.record_commit("T1#0", 1.0)
        h.record_install("T2#0", "x", 2, 2.0)
        h.record_commit("T2#0", 2.0)
        g = build_serialization_graph(h)
        assert g.edge_labels("T1#0", "T2#0") == ("ww",)

    def test_uncommitted_writers_ignored(self):
        h = History()
        h.record_read("T1#0", "x", 0, 1.0)
        h.record_commit("T1#0", 2.0)
        h.record_install("ghost#0", "x", 1, 3.0)  # never commits
        g = build_serialization_graph(h)
        assert "ghost#0" not in g.nodes or not g.has_edge("T1#0", "ghost#0")

    def test_own_write_read_makes_no_self_edge(self):
        h = History()
        h.record_install("T1#0", "x", 1, 1.0)
        h.record_read("T1#0", "x", 1, 1.5)
        h.record_commit("T1#0", 2.0)
        g = build_serialization_graph(h)
        assert g.edges == ()


class TestCheckSerializable:
    def test_serializable_history_passes(self):
        graph = check_serializable(_serial_history())
        assert graph.is_acyclic()

    def test_nonserializable_history_raises_with_cycle(self):
        # T1 reads x before T2's write of x (rw: T1 -> T2), and T2 reads y
        # before T1's write of y (rw: T2 -> T1): classic write skew cycle.
        h = History()
        h.record_read("T1#0", "x", 0, 1.0)
        h.record_read("T2#0", "y", 0, 1.5)
        h.record_install("T2#0", "x", 1, 2.0)
        h.record_commit("T2#0", 2.0)
        h.record_install("T1#0", "y", 2, 3.0)
        h.record_commit("T1#0", 3.0)
        with pytest.raises(SerializationViolation) as exc:
            check_serializable(h)
        assert set(exc.value.cycle) == {"T1#0", "T2#0"}

    def test_serialization_order_respects_edges(self):
        order = serialization_order(_serial_history())
        assert order.index("T1#0") < order.index("T2#0")

    def test_empty_history_serializable(self):
        assert serialization_order(History()) == ()

    def test_blind_writes_never_cycle(self):
        """ww edges alone follow the global install order: acyclic by
        construction (the paper's Case 3 argument)."""
        h = History()
        h.record_install("T1#0", "x", 1, 1.0)
        h.record_install("T1#0", "y", 2, 1.0)
        h.record_commit("T1#0", 1.0)
        h.record_install("T2#0", "y", 3, 2.0)
        h.record_install("T2#0", "x", 4, 2.0)
        h.record_commit("T2#0", 2.0)
        order = serialization_order(h)
        assert order == ("T1#0", "T2#0")


class TestSparseChecker:
    """check_serializable_fast must render the same verdict as the dense
    check — its sparse graph keeps only the first rw successor plus the
    ww chain, which preserves reachability among committed jobs."""

    def _fast(self):
        from repro.db.serializability import check_serializable_fast

        return check_serializable_fast

    def test_serializable_history_passes(self):
        graph = self._fast()(_serial_history())
        assert graph.is_acyclic()

    def test_write_skew_cycle_detected(self):
        h = History()
        h.record_read("T1#0", "x", 0, 1.0)
        h.record_read("T2#0", "y", 0, 1.5)
        h.record_install("T2#0", "x", 1, 2.0)
        h.record_commit("T2#0", 2.0)
        h.record_install("T1#0", "y", 2, 3.0)
        h.record_commit("T1#0", 3.0)
        with pytest.raises(SerializationViolation) as exc:
            self._fast()(h)
        assert set(exc.value.cycle) == {"T1#0", "T2#0"}

    def test_uncommitted_installers_skipped_for_rw(self):
        # the first later installer never commits; the rw edge must land
        # on the *committed* one behind it for the cycle to be found
        h = History()
        h.record_read("T1#0", "x", 0, 1.0)
        h.record_install("ghost#0", "x", 1, 1.5)  # never commits
        h.record_read("T2#0", "y", 0, 2.0)
        h.record_install("T2#0", "x", 2, 2.5)
        h.record_commit("T2#0", 2.5)
        h.record_install("T1#0", "y", 3, 3.0)
        h.record_commit("T1#0", 3.0)
        with pytest.raises(SerializationViolation):
            self._fast()(h)

    def test_random_histories_agree_with_dense_verdict(self):
        import random

        fast = self._fast()
        for trial in range(60):
            rng = random.Random(trial)
            h = History()
            jobs = [f"T{j}#0" for j in range(rng.randint(2, 6))]
            items = ["x", "y", "z"]
            versions = {item: [0] for item in items}
            seq = 0
            for _ in range(rng.randint(3, 14)):
                job = rng.choice(jobs)
                item = rng.choice(items)
                if rng.random() < 0.5:
                    h.record_read(
                        job, item, rng.choice(versions[item]), seq
                    )
                else:
                    seq += 1
                    versions[item].append(seq)
                    h.record_install(job, item, seq, seq)
            for job in jobs:
                if rng.random() < 0.8:
                    h.record_commit(job, 100 + seq)
            try:
                check_serializable(h)
                dense_ok = True
            except SerializationViolation:
                dense_ok = False
            try:
                fast(h)
                fast_ok = True
            except SerializationViolation:
                fast_ok = False
            assert dense_ok == fast_ok, f"trial {trial} diverged"
