"""Tests for deadline-monotonic priority assignment."""

import pytest

from repro.exceptions import SpecificationError
from repro.model.priorities import (
    assign_deadline_monotonic,
    assign_rate_monotonic,
)
from repro.model.spec import TaskSet, TransactionSpec, read


def _spec(name, period=None, deadline=None):
    return TransactionSpec(
        name, (read("x"),), period=period, deadline=deadline
    )


class TestDeadlineMonotonic:
    def test_shorter_deadline_gets_higher_priority(self):
        ts = TaskSet([
            _spec("loose", period=10.0, deadline=9.0),
            _spec("tight", period=10.0, deadline=3.0),
        ])
        assigned = assign_deadline_monotonic(ts)
        assert assigned.priority_of("tight") > assigned.priority_of("loose")

    def test_deadline_defaults_to_period(self):
        ts = TaskSet([_spec("slow", period=20.0), _spec("fast", period=5.0)])
        assigned = assign_deadline_monotonic(ts)
        assert assigned.priority_of("fast") > assigned.priority_of("slow")

    def test_coincides_with_rm_when_deadline_equals_period(self):
        ts = TaskSet([
            _spec("a", period=8.0), _spec("b", period=16.0), _spec("c", period=4.0),
        ])
        dm = assign_deadline_monotonic(ts)
        rm = assign_rate_monotonic(ts)
        for name in ts.names:
            assert dm.priority_of(name) == rm.priority_of(name)

    def test_diverges_from_rm_with_constrained_deadlines(self):
        ts = TaskSet([
            _spec("long_period_tight", period=20.0, deadline=2.0),
            _spec("short_period_loose", period=5.0, deadline=5.0),
        ])
        dm = assign_deadline_monotonic(ts)
        rm = assign_rate_monotonic(ts)
        assert dm.priority_of("long_period_tight") > dm.priority_of(
            "short_period_loose"
        )
        assert rm.priority_of("short_period_loose") > rm.priority_of(
            "long_period_tight"
        )

    def test_requires_deadlines(self):
        ts = TaskSet([TransactionSpec("A", (read("x"),))])
        with pytest.raises(SpecificationError):
            assign_deadline_monotonic(ts)

    def test_tie_broken_by_name(self):
        ts = TaskSet([
            _spec("B", period=10.0), _spec("A", period=10.0),
        ])
        assigned = assign_deadline_monotonic(ts)
        assert assigned.priority_of("A") > assigned.priority_of("B")

    def test_usable_end_to_end_with_pcp_da(self):
        from repro.engine.simulator import SimConfig, Simulator
        from repro.protocols import make_protocol

        ts = assign_deadline_monotonic(TaskSet([
            _spec("tight", period=20.0, deadline=4.0),
            _spec("loose", period=10.0, deadline=10.0),
        ]))
        result = Simulator(
            ts, make_protocol("pcp-da"), SimConfig(horizon=20.0)
        ).run()
        assert result.missed_jobs == ()
