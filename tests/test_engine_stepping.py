"""Tests for the stepping API (start / advance / finalize)."""

import pytest

from repro.core.pcp_da import PCPDA
from repro.engine.job import JobState
from repro.engine.simulator import SimConfig, Simulator
from repro.exceptions import SimulationError
from repro.model.spec import LockMode
from repro.protocols import make_protocol
from repro.workloads.examples import example4_taskset


class TestSteppingAPI:
    def test_stepwise_matches_one_shot(self):
        one_shot = Simulator(example4_taskset(), PCPDA()).run()

        stepped_sim = Simulator(example4_taskset(), PCPDA())
        stepped_sim.start()
        for t in (1.0, 3.0, 5.0, 8.0):
            stepped_sim.advance(until=t)
        stepped_sim.advance()
        stepped = stepped_sim.finalize()

        assert [
            (e.time, e.kind, e.job) for e in stepped.trace.sched_events
        ] == [(e.time, e.kind, e.job) for e in one_shot.trace.sched_events]
        assert stepped.end_time == one_shot.end_time

    def test_intermediate_state_is_inspectable(self):
        """At t=2 of Example 4, T4 read-locks y and T3 read+write-locks z
        — the mid-run lock table the paper's narration describes."""
        sim = Simulator(example4_taskset(), PCPDA())
        sim.start()
        sim.advance(until=2.0)
        t4 = next(j for j in sim.jobs if j.name == "T4#0")
        t3 = next(j for j in sim.jobs if j.name == "T3#0")
        assert sim.table.holds(t4, "y", LockMode.READ)
        assert sim.table.holds(t3, "z", LockMode.READ)
        assert sim.table.holds(t3, "z", LockMode.WRITE)
        assert t3.state is JobState.RUNNING

    def test_advance_returns_current_time(self):
        sim = Simulator(example4_taskset(), PCPDA())
        sim.start()
        now = sim.advance(until=4.0)
        assert now <= 4.0 + 1e-9
        assert now >= 3.0  # events at 3 were processed

    def test_advance_is_idempotent_when_no_events_due(self):
        sim = Simulator(example4_taskset(), PCPDA())
        sim.start()
        sim.advance(until=2.0)
        events_before = len(sim.trace.sched_events)
        sim.advance(until=2.0)
        assert len(sim.trace.sched_events) == events_before

    def test_lifecycle_errors(self):
        sim = Simulator(example4_taskset(), PCPDA())
        with pytest.raises(SimulationError, match="before start"):
            sim.advance()
        sim.start()
        with pytest.raises(SimulationError, match="already started"):
            sim.start()
        sim.advance()
        sim.finalize()
        with pytest.raises(SimulationError, match="already finalized"):
            sim.finalize()
        with pytest.raises(SimulationError, match="already finalized"):
            sim.advance()

    def test_run_after_start_rejected(self):
        sim = Simulator(example4_taskset(), PCPDA())
        sim.start()
        with pytest.raises(SimulationError, match="already started"):
            sim.run()

    def test_partial_run_then_completion(self):
        sim = Simulator(example4_taskset(), PCPDA())
        sim.start()
        sim.advance(until=5.0)
        committed_midway = {
            j.name for j in sim.jobs if j.state is JobState.COMMITTED
        }
        assert committed_midway == {"T3#0"}
        sim.advance()
        result = sim.finalize()
        assert len(result.committed_jobs) == 4


class TestSteppingEquivalenceProperty:
    def test_stepwise_equals_one_shot_on_random_workloads(self):
        """Property: for any workload, protocol, and set of pause points,
        stepping produces the identical trace to a one-shot run."""
        import random

        from repro.workloads.generator import WorkloadConfig, generate_taskset

        rng = random.Random(17)
        for seed in range(10):
            config = WorkloadConfig(
                n_transactions=5, n_items=5, write_probability=0.5,
                hot_access_probability=0.9, target_utilization=0.6,
                seed=seed,
            )
            protocol_name = rng.choice(["pcp-da", "rw-pcp", "2pl-hp"])
            from repro.protocols import make_protocol

            one_shot = Simulator(
                generate_taskset(config),
                make_protocol(protocol_name),
                SimConfig(deadlock_action="abort_lowest"),
            ).run()

            stepped_sim = Simulator(
                generate_taskset(config),
                make_protocol(protocol_name),
                SimConfig(deadlock_action="abort_lowest"),
            )
            stepped_sim.start()
            cursor = 0.0
            for __ in range(rng.randint(1, 6)):
                cursor += rng.uniform(1.0, 40.0)
                stepped_sim.advance(until=cursor)
            stepped_sim.advance()
            stepped = stepped_sim.finalize()

            assert [
                (e.time, e.kind, e.job) for e in stepped.trace.sched_events
            ] == [
                (e.time, e.kind, e.job) for e in one_shot.trace.sched_events
            ], f"seed={seed} protocol={protocol_name}"
