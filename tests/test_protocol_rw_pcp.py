"""Behavioural tests of RW-PCP beyond the paper's worked examples."""

import pytest

from repro.engine.simulator import SimConfig, Simulator
from repro.model.priorities import assign_by_order
from repro.model.spec import TransactionSpec, compute, read, write
from repro.protocols.rw_pcp import RWPCP
from repro.verify import (
    assert_deadlock_free,
    assert_serializable,
    assert_single_blocking,
)
from tests.conftest import run


def _ts(*specs):
    return assign_by_order(list(specs))


class TestRWPCPRules:
    def test_concurrent_readers_of_different_priority_allowed(self):
        """Only readers above Wceil(x) may join; with no writers anywhere
        the write ceilings are dummy and everyone reads concurrently."""
        ts = _ts(
            TransactionSpec("H", (read("x", 2.0),), offset=1.0),
            TransactionSpec("L", (read("x", 3.0),), offset=0.0),
        )
        result = run(ts, "rw-pcp")
        assert all(j.total_blocking_time() == 0.0 for j in result.jobs)

    def test_second_reader_blocked_below_write_ceiling(self):
        """With a high-priority writer of x in the set, a reader cannot
        join an existing read lock unless its priority exceeds Wceil(x):
        rwceil(x) = Wceil(x) = P_W >= P_R2, so R2 is ceiling-blocked even
        though read/read would be compatible.  This is RW-PCP's guard that
        a future write-lock by W meets at most ONE reader."""
        ts = _ts(
            TransactionSpec("W", (write("x", 1.0),), offset=9.0),  # never runs early
            TransactionSpec("R2", (read("x", 1.0),), offset=1.0),
            TransactionSpec("R1", (read("x", 3.0),), offset=0.0),
        )
        # Priorities: W=3, R2=2, R1=1.  R1 read-locks x at 0; R2 preempts
        # at 1 and requests: Sysceil = Wceil(x) = 3 >= P(R2) = 2 -> block.
        result = run(ts, "rw-pcp")
        r2 = result.job("R2#0")
        assert r2.total_blocking_time() == 2.0  # waits until R1 commits at 3
        assert result.trace.denials_for("R2#0")[0].blockers == ("R1#0",)

    def test_writer_blocks_everyone(self):
        ts = _ts(
            TransactionSpec("R", (read("x", 1.0),), offset=1.0),
            TransactionSpec("W", (write("x", 3.0),), offset=0.0),
        )
        result = run(ts, "rw-pcp")
        assert result.job("R#0").total_blocking_time() == 2.0

    def test_upgrade_read_to_write_by_same_job(self):
        ts = _ts(TransactionSpec("T", (read("z"), write("z"))))
        result = run(ts, "rw-pcp")
        assert result.job("T#0").finish_time == 2.0

    def test_inheritance_accelerates_blocker(self):
        """The blocking low-priority transaction runs at the waiter's
        priority, shielding it from middle-priority preemption (the whole
        point of priority inheritance)."""
        ts = _ts(
            TransactionSpec("H", (read("x", 1.0),), offset=1.0),
            TransactionSpec("M", (compute(5.0),), offset=2.0),
            TransactionSpec("L", (write("x", 3.0),), offset=0.0),
        )
        result = run(ts, "rw-pcp")
        # L holds x; H blocks on x at 1 and L inherits P_H, so M cannot
        # run until L commits (3) and H finishes (4).
        assert result.job("L#0").finish_time == 3.0
        assert result.job("H#0").finish_time == 4.0
        assert result.job("M#0").finish_time == 9.0

    def test_without_inheritance_inversion_would_be_longer(self):
        """Contrast with plain 2PL: M preempts L, stretching H's wait."""
        ts = _ts(
            TransactionSpec("H", (read("x", 1.0),), offset=1.0),
            TransactionSpec("M", (compute(5.0),), offset=2.0),
            TransactionSpec("L", (write("x", 3.0),), offset=0.0),
        )
        result = run(ts, "2pl", SimConfig(deadlock_action="abort_lowest"))
        # M runs 2-7 at priority 2 > L's 1 (no inheritance): H waits 1..8.
        assert result.job("H#0").finish_time == 9.0
        assert result.job("H#0").total_blocking_time() == 7.0


class TestRWPCPInvariants:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_workloads_keep_guarantees(self, seed):
        from repro.workloads.generator import WorkloadConfig, generate_taskset

        ts = generate_taskset(
            WorkloadConfig(
                n_transactions=5, n_items=6, write_probability=0.4,
                hot_access_probability=0.8, seed=seed,
            )
        )
        result = Simulator(ts, RWPCP(), SimConfig(horizon=600.0)).run()
        assert_deadlock_free(result)
        assert_single_blocking(result)
        assert_serializable(result)
        assert result.aborted_restarts == 0
