"""Engine conservation laws, checked over random workloads.

These invariants hold for *every* protocol because they are properties of
the CPU model, not of the locking rules:

* exclusivity — at most one job executes at any instant (no two execution
  segments overlap);
* work conservation per job — a committed job's executed CPU time equals
  its declared execution time (plus configured overheads);
* no idling while work is ready — whenever a job is READY, the CPU is not
  idle (fixed-priority work-conserving scheduling);
* response-time sanity — a job never finishes before arrival + C.
"""

import pytest

from repro.engine.job import JobState
from repro.engine.simulator import SimConfig, Simulator
from repro.protocols import make_protocol
from repro.workloads.generator import WorkloadConfig, generate_taskset

PROTOCOLS = ("pcp-da", "rw-pcp", "ccp", "pcp", "pip-2pl", "2pl-hp", "occ-bc")
_EPS = 1e-6


def _run(protocol, seed):
    taskset = generate_taskset(
        WorkloadConfig(
            n_transactions=5, n_items=5, write_probability=0.4,
            hot_access_probability=0.8, target_utilization=0.6, seed=seed,
        )
    )
    return Simulator(
        taskset, make_protocol(protocol),
        SimConfig(deadlock_action="abort_lowest"),
    ).run()


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("seed", range(3))
class TestConservation:
    def test_cpu_exclusivity(self, protocol, seed):
        result = _run(protocol, seed)
        segments = sorted(result.trace.segments, key=lambda s: s.start)
        for a, b in zip(segments, segments[1:]):
            assert a.end <= b.start + _EPS, (
                f"overlap: {a.job}[{a.start},{a.end}) vs {b.job}[{b.start},{b.end})"
            )

    def test_committed_jobs_execute_exactly_c(self, protocol, seed):
        result = _run(protocol, seed)
        for job in result.jobs:
            if job.state is not JobState.COMMITTED or job.restarts:
                continue  # restarted jobs executed extra (wasted) work
            executed = sum(
                s.end - s.start for s in result.trace.segments_for(job.name)
            )
            assert executed == pytest.approx(job.spec.execution_time, abs=1e-6)

    def test_restarted_jobs_execute_at_least_c(self, protocol, seed):
        result = _run(protocol, seed)
        for job in result.jobs:
            if job.state is not JobState.COMMITTED or not job.restarts:
                continue
            executed = sum(
                s.end - s.start for s in result.trace.segments_for(job.name)
            )
            assert executed >= job.spec.execution_time - _EPS

    def test_response_time_at_least_c(self, protocol, seed):
        result = _run(protocol, seed)
        for job in result.jobs:
            if job.response_time is not None and not job.restarts:
                assert job.response_time >= job.spec.execution_time - _EPS

    def test_work_conserving(self, protocol, seed):
        """The CPU is never idle while some job is ready: total executed
        time in [0, makespan] equals makespan whenever demand is pending.
        Checked via a weaker but exact corollary: the sum of executed time
        equals the sum of per-committed-job C (+ restart waste), and the
        last commit is no earlier than total-work / 1 CPU."""
        result = _run(protocol, seed)
        total_executed = sum(s.end - s.start for s in result.trace.segments)
        total_c = sum(
            j.spec.execution_time for j in result.jobs
            if j.state is JobState.COMMITTED and not j.restarts
        )
        assert total_executed >= total_c - _EPS
