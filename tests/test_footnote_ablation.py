"""Ablation of the Table-1 footnote check.

Section 5 of the paper: "neither LC2 nor LC3 need to explicitly check the
condition DataRead(T*) ∩ WriteSet(T_i) = ∅ ... because in both LC2 and
LC3, T_i will not request a write-lock on the existing read-locked data
items."  Our implementation enforces the check uniformly anyway; these
tests probe the paper's implication claim empirically:

* the check fires in *synthetic* lock-table states (the unit tests in
  test_core_locking_conditions.py and the waiter-exemption suite), so the
  guard is live code;
* yet across the exhaustive two-transaction enumeration and seeded random
  corpora, the protocol with and without the check produces **identical
  traces** — supporting the paper's argument that on a single processor
  the ceiling conditions already subsume it.
"""

import itertools
import random

import pytest

from repro.engine.simulator import SimConfig, Simulator
from repro.model.priorities import assign_by_order
from repro.model.spec import TransactionSpec, read, write
from repro.protocols import make_protocol
from repro.verify import assert_serializable


def _trace_signature(result):
    return (
        [(e.time, e.kind.value, e.job) for e in result.trace.sched_events],
        [
            (e.time, e.job, e.item, e.mode.value, e.outcome.value)
            for e in result.trace.lock_events
        ],
    )


def _run(taskset, **kwargs):
    return Simulator(
        assign_by_order(list(taskset)) if not hasattr(taskset, "names") else taskset,
        make_protocol("pcp-da", **kwargs),
        SimConfig(deadlock_action="halt"),
    ).run()


class TestFootnoteAblation:
    def test_identical_traces_on_exhaustive_two_transaction_space(self):
        from tests.test_exhaustive_small_scenarios import _PROGRAMS, _OFFSETS

        divergences = 0
        for low, high in itertools.product(_PROGRAMS, repeat=2):
            for offset in _OFFSETS:
                taskset = assign_by_order([
                    TransactionSpec("H", high, offset=offset),
                    TransactionSpec("L", low, offset=0.0),
                ])
                with_check = _run(taskset)
                taskset2 = assign_by_order([
                    TransactionSpec("H", high, offset=offset),
                    TransactionSpec("L", low, offset=0.0),
                ])
                without_check = _run(taskset2, enable_table1_check=False)
                if _trace_signature(with_check) != _trace_signature(without_check):
                    divergences += 1
        assert divergences == 0

    @pytest.mark.parametrize("seed", range(6))
    def test_identical_traces_on_random_workloads(self, seed):
        rng = random.Random(seed)
        items = ["a", "b", "c", "d"]

        def rand_ops():
            ops, used = [], set()
            for __ in range(rng.randint(1, 4)):
                item = rng.choice(items)
                is_write = rng.random() < 0.5
                if (item, is_write) in used:
                    continue
                used.add((item, is_write))
                duration = rng.choice([1.0, 2.0])
                ops.append(
                    write(item, duration) if is_write else read(item, duration)
                )
            return tuple(ops) or (read(rng.choice(items), 1.0),)

        for __ in range(120):
            n = rng.randint(3, 5)
            programs = [
                (rand_ops(), float(rng.randint(0, 6))) for __ in range(n)
            ]

            def build():
                return assign_by_order([
                    TransactionSpec(f"T{k + 1}", ops, offset=offset)
                    for k, (ops, offset) in enumerate(programs)
                ])

            with_check = _run(build())
            without_check = _run(build(), enable_table1_check=False)
            assert _trace_signature(with_check) == _trace_signature(without_check)
            if with_check.deadlock is None:
                assert_serializable(with_check)

    def test_flag_is_reflected_in_describe(self):
        protocol = make_protocol("pcp-da", enable_table1_check=False)
        assert "Table-1 check off" in protocol.describe()
