"""Stateful (rule-based) hypothesis testing of the lock table.

The lock table is the one data structure every protocol mutates; a model
mismatch here would corrupt every result.  The state machine below mirrors
the table with plain dictionaries and checks full agreement after every
operation, across arbitrary interleavings of grants, single releases, and
release-alls.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.engine.job import Job
from repro.engine.lock_table import LockTable
from repro.model.spec import LockMode, TransactionSpec, read

_ITEMS = ["a", "b", "c"]


def _job(index: int) -> Job:
    spec = TransactionSpec(f"T{index}", (read("a"),), priority=index + 1)
    return Job(spec, 0, 0.0)


class LockTableMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.table = LockTable()
        self.jobs = [_job(i) for i in range(4)]
        # Model: {(job_index, item): set of modes}
        self.model = {}

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    @rule(
        job_index=st.integers(min_value=0, max_value=3),
        item=st.sampled_from(_ITEMS),
        mode=st.sampled_from([LockMode.READ, LockMode.WRITE]),
    )
    def grant(self, job_index, item, mode):
        key = (job_index, item)
        held = self.model.get(key, set())
        if mode in held:
            return  # engine never double-grants; skip
        self.table.grant(self.jobs[job_index], item, mode)
        self.model[key] = held | {mode}

    @rule(
        job_index=st.integers(min_value=0, max_value=3),
        item=st.sampled_from(_ITEMS),
        mode=st.sampled_from([LockMode.READ, LockMode.WRITE]),
    )
    def release(self, job_index, item, mode):
        key = (job_index, item)
        held = self.model.get(key, set())
        if mode not in held:
            return
        self.table.release(self.jobs[job_index], item, mode)
        held.discard(mode)
        if not held:
            del self.model[key]

    @rule(job_index=st.integers(min_value=0, max_value=3))
    def release_all(self, job_index):
        released = self.table.release_all(self.jobs[job_index])
        expected = {
            (item, mode)
            for (j, item), modes in self.model.items()
            if j == job_index
            for mode in modes
        }
        assert set(released) == expected
        for key in [k for k in self.model if k[0] == job_index]:
            del self.model[key]

    # ------------------------------------------------------------------
    # Invariants: table agrees with the model in every view
    # ------------------------------------------------------------------
    @invariant()
    def holders_agree(self):
        for item in _ITEMS:
            expected_readers = {
                self.jobs[j]
                for (j, it), modes in self.model.items()
                if it == item and LockMode.READ in modes
            }
            expected_writers = {
                self.jobs[j]
                for (j, it), modes in self.model.items()
                if it == item and LockMode.WRITE in modes
            }
            assert self.table.readers_of(item) == frozenset(expected_readers)
            assert self.table.writers_of(item) == frozenset(expected_writers)
            assert self.table.holders_of(item) == frozenset(
                expected_readers | expected_writers
            )

    @invariant()
    def per_job_index_agrees(self):
        for j, job in enumerate(self.jobs):
            expected = {
                item: frozenset(modes)
                for (jj, item), modes in self.model.items()
                if jj == j
            }
            assert self.table.items_held_by(job) == expected

    @invariant()
    def read_locked_items_agree(self):
        expected = sorted({
            item
            for (j, item), modes in self.model.items()
            if LockMode.READ in modes
        })
        assert list(self.table.read_locked_items()) == expected

    @invariant()
    def locked_items_exclude_works(self):
        for j, job in enumerate(self.jobs):
            expected = sorted({
                item
                for (jj, item), modes in self.model.items()
                if jj != j and modes
            })
            assert list(self.table.locked_items(exclude=job)) == expected


LockTableMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)
TestLockTableStateful = LockTableMachine.TestCase
