"""Tests for critical-instant simulation (repro.analysis.critical_instant)."""

import pytest

from repro.analysis.critical_instant import (
    critical_instant_phasings,
    simulate_worst_responses,
)
from repro.analysis.response_time import response_times, rta_schedulable
from repro.model.priorities import assign_by_order
from repro.model.spec import TransactionSpec, compute, read, write
from repro.workloads.generator import WorkloadConfig, generate_taskset


class TestPhasings:
    def test_includes_synchronous_release(self):
        ts = assign_by_order([
            TransactionSpec("A", (compute(1.0),), period=4.0),
            TransactionSpec("B", (read("x", 1.0),), period=8.0),
        ])
        phasings = critical_instant_phasings(ts)
        assert phasings[0] == {}

    def test_one_phasing_per_lock_window(self):
        ts = assign_by_order([
            TransactionSpec("A", (compute(1.0),), period=4.0),
            TransactionSpec("B", (read("x", 1.0), write("y", 1.0)), period=8.0),
        ])
        phasings = critical_instant_phasings(ts)
        # synchronous + 2 windows of B + 0 of A (compute only).
        assert len(phasings) == 3

    def test_phasing_shifts_everyone_but_the_holder(self):
        ts = assign_by_order([
            TransactionSpec("A", (compute(1.0),), period=4.0),
            TransactionSpec("B", (compute(1.0), read("x", 1.0)), period=8.0),
        ])
        phasings = critical_instant_phasings(ts)
        lock_phasing = phasings[1]
        assert lock_phasing["B"] == 0.0
        assert lock_phasing["A"] == pytest.approx(1.001)


class TestWorstResponses:
    def test_never_exceeds_rta_bound(self):
        for seed in range(8):
            taskset = generate_taskset(
                WorkloadConfig(
                    n_transactions=4, n_items=5, write_probability=0.4,
                    hot_access_probability=0.8, target_utilization=0.55,
                    seed=seed,
                )
            )
            if not rta_schedulable(taskset, "pcp-da"):
                continue
            bounds = response_times(taskset, "pcp-da")
            observed = simulate_worst_responses(taskset, "pcp-da")
            for name, worst in observed.items():
                assert worst <= bounds[name] + 1e-6, (
                    f"seed={seed} {name}: observed {worst} > bound {bounds[name]}"
                )

    def test_finds_blocking_the_synchronous_release_misses(self):
        """With all offsets zero, the low-priority writer never gets to
        grab its lock before the high-priority reader runs; the shifted
        phasing exposes the Case-2 blocking."""
        ts = assign_by_order([
            TransactionSpec("H", (write("x", 1.0),), period=10.0),
            TransactionSpec("L", (read("x", 3.0),), period=30.0),
        ])
        observed = simulate_worst_responses(ts, "pcp-da")
        # Synchronous: H runs first, response 1.  Adversarial: L holds the
        # read lock when H arrives -> H waits for L's commit.
        assert observed["H"] > 1.0
        bounds = response_times(ts, "pcp-da")
        assert observed["H"] <= bounds["H"] + 1e-6

    def test_requires_horizon_for_aperiodic(self):
        ts = assign_by_order([TransactionSpec("A", (compute(1.0),))])
        with pytest.raises(ValueError):
            simulate_worst_responses(ts)
