"""Real-subprocess deployment soaks (``procs_soak``, excluded from tier-1).

Everything here spawns genuine ``repro shard-host`` children over real
TCP: the five-way decision parity battery with the 4-process coordinator
as its fifth execution, and a concurrent stress run through a 4-process
deployment with full serializability and conservation audits.  The
socket-free equivalents of every mechanism live in the tier-1
``test_procs_*`` files; this tier proves the mechanisms survive actual
process and socket boundaries (``make verify-procs SOAK=1``).
"""

import asyncio

import pytest

from repro.verify.parity import check_decision_parity, parity_battery
from repro.verify.stress import StressSpec, run_stress

pytestmark = pytest.mark.procs_soak


class TestProcsParity:
    def test_five_way_parity_includes_the_4proc_coordinator(self):
        spec = StressSpec(seed=1, transactions=12)
        report = check_decision_parity(
            spec, "pcp-da", coordinator_shards=2, coordinator_procs=4,
        )
        assert "coordinator[4proc]" in report.executions
        assert report.decisions > 0

    def test_parity_battery_grid_with_procs(self):
        reports = parity_battery(
            seeds=(0, 1), protocols=("pcp-da", "pcp"),
            transactions=10, coordinator_procs=2,
        )
        assert len(reports) == 4
        assert all("coordinator[2proc]" in r.executions for r in reports)


class TestProcsStress:
    def test_concurrent_stress_through_4_processes(self):
        spec = StressSpec(
            seed=3, transactions=400, overload=1.5,
            abort_probability=0.02,
        )
        report = asyncio.run(run_stress(
            spec, "pcp-da", shard_procs=4, max_sessions=64,
        ))
        assert report.ok, report.render()
        assert report.procs == 4
        assert report.trend_row()["protocol"] == "pcp-da@4proc"
        assert report.committed > 0
