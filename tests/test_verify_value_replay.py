"""Tests for the value-replay (final-state serializability) oracle."""

import pytest

from repro.engine.simulator import SimConfig, Simulator
from repro.exceptions import InvariantViolation
from repro.model.priorities import assign_by_order
from repro.model.spec import TransactionSpec, compute, read, write
from repro.protocols import make_protocol
from repro.verify import assert_value_replay_consistent
from repro.workloads.examples import example3_taskset, example4_taskset
from repro.workloads.generator import WorkloadConfig, generate_taskset


def _run(taskset, protocol, config=None):
    return Simulator(taskset, make_protocol(protocol), config).run()


class TestOracleAccepts:
    def test_example4_pcp_da(self, ex4):
        assert_value_replay_consistent(_run(ex4, "pcp-da"))

    def test_example3_pcp_da(self, ex3):
        assert_value_replay_consistent(
            _run(ex3, "pcp-da", SimConfig(horizon=11.0, max_instances=2))
        )

    def test_case1_reader_of_write_locked_item(self):
        """The delicate PCP-DA schedule: H reads x while L write-locks it;
        replay must reproduce H reading the INITIAL x, not L's value."""
        ts = assign_by_order([
            TransactionSpec("H", (read("x", 1.0), write("y", 1.0)), offset=1.0),
            TransactionSpec("L", (write("x", 1.0), compute(2.0)), offset=0.0),
        ])
        result = _run(ts, "pcp-da")
        assert_value_replay_consistent(result)
        # And the final y value names H's read of the initial x (= None).
        assert result.database.read_committed("y").value == "H#0:y(x=None)"

    def test_values_chain_through_committed_writers(self):
        """B reads what A wrote; the digest must nest A's digest."""
        ts = assign_by_order([
            TransactionSpec("B", (read("x", 1.0), write("z", 1.0)), offset=3.0),
            TransactionSpec("A", (write("x", 1.0),), offset=0.0),
        ])
        result = _run(ts, "pcp-da")
        assert_value_replay_consistent(result)
        assert result.database.read_committed("z").value == "B#0:z(x=A#0:x())"

    @pytest.mark.parametrize("protocol", ["pcp-da", "2pl-hp", "occ-bc",
                                          "pip-2pl", "rw-pcp-abort"])
    @pytest.mark.parametrize("seed", range(5))
    def test_random_workloads_for_deferred_protocols(self, protocol, seed):
        taskset = generate_taskset(
            WorkloadConfig(
                n_transactions=5, n_items=5, write_probability=0.5,
                rmw_probability=0.4, hot_access_probability=0.9,
                target_utilization=0.65, seed=seed,
            )
        )
        result = Simulator(
            taskset, make_protocol(protocol),
            SimConfig(deadlock_action="abort_lowest"),
        ).run()
        assert_value_replay_consistent(result)

    def test_restarted_jobs_replay_with_their_surviving_reads(self):
        """2PL-HP restarts a reader; the oracle must see the re-read."""
        ts = assign_by_order([
            TransactionSpec("H", (write("x", 1.0),), offset=1.0),
            TransactionSpec("L", (read("x", 2.0), write("y", 1.0)), offset=0.0),
        ])
        result = _run(ts, "2pl-hp")
        assert result.job("L#0").restarts == 1
        assert_value_replay_consistent(result)
        assert result.database.read_committed("y").value == "L#0:y(x=H#0:x())"

    def test_firm_deadline_drops_excluded(self):
        ts = assign_by_order([
            TransactionSpec(
                "W", (write("x", 1.0),), offset=1.0, period=8.0, deadline=8.0
            ),
            TransactionSpec(
                "L", (read("x", 6.0), write("y", 1.0)), offset=0.0,
                period=8.0, deadline=3.0,
            ),
        ])
        result = _run(
            ts, "pcp-da", SimConfig(horizon=8.0, on_miss="abort")
        )
        assert_value_replay_consistent(result)


class TestOracleRejects:
    def test_in_place_runs_rejected(self, ex4):
        with pytest.raises(InvariantViolation, match="deferred-update"):
            assert_value_replay_consistent(_run(ex4, "rw-pcp"))

    def test_detects_corrupted_final_state(self, ex4):
        result = _run(ex4, "pcp-da")
        # Corrupt the database behind the oracle's back.
        result.database.install("x", "tampered", "T4#0", result.end_time + 1)
        with pytest.raises(InvariantViolation, match="mismatch|diverged"):
            assert_value_replay_consistent(result)
