"""Section 4.1 — the case analysis behind dynamic adjustment of
serialization order, reproduced as executable scenarios.

The paper derives PCP-DA from three conflict cases (plus Example 2's
composition of write-write conflicts with the other types).  Each test
builds the exact access pattern, simulates it under PCP-DA, and checks
both the scheduling outcome (who preempts, who blocks) and the resulting
serialization order of the committed history.
"""

import pytest

from repro.db.serializability import serialization_order
from repro.engine.simulator import SimConfig
from repro.model.priorities import assign_by_order
from repro.model.spec import TransactionSpec, compute, read, write
from repro.verify import verify_pcp_da_run
from tests.conftest import run


def _ts(*specs):
    return assign_by_order(list(specs))


class TestCase1WriteThenRead:
    """Case 1: Write_L(x) · Read_H(x) — T_H preempts, commits first, and
    the serialization order is adjusted to T_H -> T_L."""

    def test_preemption_and_order(self):
        ts = _ts(
            TransactionSpec("TH", (read("x", 1.0),), offset=1.0),
            TransactionSpec("TL", (write("x", 1.0), compute(2.0)), offset=0.0),
        )
        result = run(ts, "pcp-da")
        th, tl = result.job("TH#0"), result.job("TL#0")
        assert th.total_blocking_time() == 0.0       # preempts, not blocked
        assert th.finish_time < tl.finish_time       # T_H commits first
        assert serialization_order(result.history) == ("TH#0", "TL#0")
        # T_H read the *committed* version, not T_L's pending write.
        read_event = result.history.committed_reads()[0]
        assert read_event.version_seq == 0
        verify_pcp_da_run(result)


class TestCase2ReadThenWrite:
    """Case 2: Read_L(x) · Write_H(x) — the serialization order is forced
    to T_L -> T_H, so T_H must block (the one unavoidable blocking)."""

    def test_blocking_and_order(self):
        ts = _ts(
            TransactionSpec("TH", (write("x", 1.0),), offset=1.0),
            TransactionSpec("TL", (read("x", 2.0), compute(1.0)), offset=0.0),
        )
        result = run(ts, "pcp-da")
        th, tl = result.job("TH#0"), result.job("TL#0")
        assert th.total_blocking_time() > 0.0
        assert tl.finish_time < th.finish_time       # T_L commits first
        assert serialization_order(result.history) == ("TL#0", "TH#0")
        verify_pcp_da_run(result)


class TestCase3WriteWrite:
    """Case 3: Write_L(x) · Write_H(x) — blind writes never conflict; the
    commit order decides the final value and no constraint is induced."""

    def test_no_blocking_either_way(self):
        ts = _ts(
            TransactionSpec("TH", (write("x", 1.0),), offset=1.0),
            TransactionSpec("TL", (write("x", 1.0), compute(2.0)), offset=0.0),
        )
        result = run(ts, "pcp-da")
        assert all(j.total_blocking_time() == 0.0 for j in result.jobs)
        # T_H commits first but T_L commits later: last install wins.
        assert result.database.read_committed("x").writer == "TL#0"
        verify_pcp_da_run(result)


class TestExample2Type1:
    """Example 2, Type 1: a Write·Write conflict on y composed with a
    Write(x)·Read(x) conflict.  Both orderings of the conflicts leave the
    history serializable with T_H -> T_L."""

    def test_write_read_preceding_write_write(self):
        # Situation (1): T_L writes x; T_H reads x then writes y; T_L
        # writes y afterwards.  T_H preempts and commits first.
        ts = _ts(
            TransactionSpec("TH", (read("x", 1.0), write("y", 1.0)), offset=1.0),
            TransactionSpec(
                "TL", (write("x", 1.0), compute(2.0), write("y", 1.0)), offset=0.0
            ),
        )
        result = run(ts, "pcp-da")
        assert result.job("TH#0").total_blocking_time() == 0.0
        order = serialization_order(result.history)
        assert order.index("TH#0") < order.index("TL#0")
        # Final y is T_L's (it committed last).
        assert result.database.read_committed("y").writer == "TL#0"
        verify_pcp_da_run(result)

    def test_write_write_preceding_write_read(self):
        # Situation (2): T_L writes y first; T_H writes y then reads x,
        # which T_L write-locks later.  Still serializable, T_H first.
        ts = _ts(
            TransactionSpec("TH", (write("y", 1.0), read("x", 1.0)), offset=1.0),
            TransactionSpec(
                "TL", (write("y", 1.0), write("x", 1.0), compute(1.0)), offset=0.0
            ),
        )
        result = run(ts, "pcp-da")
        assert result.job("TH#0").total_blocking_time() == 0.0
        order = serialization_order(result.history)
        assert order.index("TH#0") < order.index("TL#0")
        verify_pcp_da_run(result)


class TestExample2Type2:
    """Example 2, Type 2: Write·Write composed with Read(x)·Write(x) —
    T_H blocks on the read-locked item and T_L commits first."""

    def test_read_write_conflict_forces_tl_first(self):
        # T_L reads x and writes y; T_H writes both y and x.  When T_H
        # requests the write lock on x (read-locked by T_L), it blocks;
        # the committed history is serializable with T_L -> T_H.
        ts = _ts(
            TransactionSpec("TH", (write("y", 1.0), write("x", 1.0)), offset=1.0),
            TransactionSpec(
                "TL", (read("x", 2.0), write("y", 1.0)), offset=0.0
            ),
        )
        result = run(ts, "pcp-da")
        th = result.job("TH#0")
        assert th.total_blocking_time() > 0.0
        order = serialization_order(result.history)
        assert order.index("TL#0") < order.index("TH#0")
        # Final values are T_H's (committed last).
        assert result.database.read_committed("x").writer == "TH#0"
        assert result.database.read_committed("y").writer == "TH#0"
        verify_pcp_da_run(result)
