"""Unit tests for history recording (repro.db.history)."""

from repro.db.history import History, HistoryEventKind


class TestHistory:
    def test_commit_order(self):
        h = History()
        h.record_commit("T2#0", 1.0)
        h.record_commit("T1#0", 2.0)
        assert h.commit_order() == ("T2#0", "T1#0")

    def test_events_get_monotonic_seq(self):
        h = History()
        h.record_read("T1#0", "x", 0, 1.0)
        h.record_install("T1#0", "x", 1, 2.0)
        h.record_commit("T1#0", 2.0)
        seqs = [e.seq for e in h.events]
        assert seqs == sorted(seqs) == [0, 1, 2]

    def test_committed_reads_excludes_uncommitted_jobs(self):
        h = History()
        h.record_read("T1#0", "x", 0, 1.0)
        h.record_read("T2#0", "x", 0, 1.5)
        h.record_commit("T1#0", 2.0)
        assert [e.job for e in h.committed_reads()] == ["T1#0"]

    def test_committed_reads_excludes_pre_abort_reads(self):
        h = History()
        h.record_read("T1#0", "x", 0, 1.0)   # first execution
        h.record_abort("T1#0", 2.0)          # restarted by 2PL-HP
        h.record_read("T1#0", "x", 3, 3.0)   # surviving execution
        h.record_commit("T1#0", 4.0)
        reads = h.committed_reads()
        assert len(reads) == 1
        assert reads[0].version_seq == 3

    def test_installs_in_order(self):
        h = History()
        h.record_install("T1#0", "x", 1, 1.0)
        h.record_install("T2#0", "x", 2, 2.0)
        assert [e.version_seq for e in h.installs()] == [1, 2]

    def test_aborted_jobs_tracked(self):
        h = History()
        h.record_abort("T3#0", 1.0)
        h.record_abort("T3#0", 2.0)
        assert h.aborted_jobs == ("T3#0", "T3#0")

    def test_len_and_iter(self):
        h = History()
        h.record_commit("T1#0", 1.0)
        assert len(h) == 1
        assert [e.kind for e in h] == [HistoryEventKind.COMMIT]
