"""Unit tests for the database substrate (repro.db.database)."""

import pytest

from repro.db.database import Database, DataItem
from repro.exceptions import SimulationError


class TestDataItem:
    def test_initial_version(self):
        item = DataItem("x", initial_value=42)
        assert item.current.value == 42
        assert item.current.writer is None
        assert item.current.seq == 0

    def test_install_appends_version(self):
        item = DataItem("x")
        v = item.install("v1", "T1#0", 3.0, 1)
        assert item.current is v
        assert len(item.versions) == 2

    def test_install_in_the_past_rejected(self):
        item = DataItem("x")
        item.install("v1", "T1#0", 5.0, 1)
        with pytest.raises(SimulationError):
            item.install("v2", "T2#0", 4.0, 2)


class TestDatabase:
    def test_declared_items(self):
        db = Database(["x", "y"])
        assert db.item_names == ("x", "y")
        assert "x" in db and "z" not in db

    def test_lazy_creation(self):
        db = Database()
        version = db.read_committed("fresh")
        assert version.seq == 0
        assert "fresh" in db

    def test_install_assigns_global_sequence(self):
        db = Database(["x", "y"])
        v1 = db.install("x", "a", "T1#0", 1.0)
        v2 = db.install("y", "b", "T1#0", 1.0)
        assert v2.seq == v1.seq + 1

    def test_install_many_is_sorted_and_atomic(self):
        db = Database(["b", "a"])
        versions = db.install_many({"b": 2, "a": 1}, "T1#0", 5.0)
        assert set(versions) == {"a", "b"}
        assert versions["a"].seq < versions["b"].seq  # sorted item order
        assert all(v.time == 5.0 for v in versions.values())

    def test_read_committed_sees_latest(self):
        db = Database(["x"])
        db.install("x", "new", "T1#0", 1.0)
        assert db.read_committed("x").value == "new"

    def test_snapshot(self):
        db = Database(["x"])
        db.install("x", "v", "T1#0", 1.0)
        assert db.snapshot() == {"x": "v"}
