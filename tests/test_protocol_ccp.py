"""Behavioural tests of the convex ceiling protocol (CCP)."""

import pytest

from repro.engine.simulator import SimConfig, Simulator
from repro.model.priorities import assign_by_order
from repro.model.spec import LockMode, TransactionSpec, compute, read, write
from repro.protocols.ccp import CCP
from repro.verify import (
    assert_deadlock_free,
    assert_serializable,
    assert_single_blocking,
)
from tests.conftest import run


def _ts(*specs):
    return assign_by_order(list(specs))


class TestEarlyUnlock:
    def test_high_ceiling_item_released_before_commit(self):
        """L's only lock (the high-ceiling item a) is released right after
        its last use: L is past its lock point, so CCP unlocks a at t=1
        instead of at commit t=5."""
        ts = _ts(
            TransactionSpec("H", (read("a", 1.0), write("a", 1.0)), offset=2.0),
            TransactionSpec("L", (read("a", 1.0), compute(4.0)), offset=0.0),
        )
        result = run(ts, "ccp")
        # Under strict 2PL (RW-PCP) H would block at t=2 until L commits
        # at 5; under CCP, a was unlocked at t=1, so H runs 2..4 unblocked.
        assert result.job("H#0").total_blocking_time() == 0.0
        assert result.job("H#0").finish_time == 4.0

    def test_rw_pcp_blocks_where_ccp_does_not(self):
        ts = _ts(
            TransactionSpec("H", (read("a", 1.0), write("a", 1.0)), offset=2.0),
            TransactionSpec("L", (read("a", 1.0), compute(4.0)), offset=0.0),
        )
        rw = run(ts, "rw-pcp")
        assert rw.job("H#0").total_blocking_time() > 0.0

    def test_release_batch_at_lock_point(self):
        """Both items release at the lock point (t=2), before the compute
        tail; H write-locks b at 2 instead of waiting until L's commit."""
        ts = _ts(
            TransactionSpec("H", (write("b", 1.0),), offset=2.0),
            TransactionSpec(
                "L", (read("b", 1.0), read("a", 1.0), compute(2.0)), offset=0.0
            ),
        )
        result = run(ts, "ccp")
        assert result.job("H#0").total_blocking_time() == 0.0
        assert result.job("H#0").finish_time == 3.0

    def test_lock_kept_before_lock_point(self):
        """The two-phase guard: nothing is released while a future
        acquisition is still ahead, even if the held item is done."""
        ts = _ts(
            TransactionSpec("H", (write("b", 1.0),), offset=2.0),
            TransactionSpec(
                "L", (read("b", 1.0), compute(2.0), read("a", 1.0)), offset=0.0
            ),
        )
        result = run(ts, "ccp")
        # L's read lock on b must persist through the compute (the read of
        # a at t=3 is still ahead), so H blocks at 2 until L commits at 4.
        assert result.job("H#0").total_blocking_time() == 2.0

    def test_future_read_under_held_write_lock_is_not_an_acquisition(self):
        """A later read of an item the job already write-locks does not
        postpone the lock point."""
        ts = _ts(
            TransactionSpec("H", (write("b", 1.0),), offset=2.0),
            TransactionSpec(
                "L",
                (read("b", 1.0), write("a", 1.0), compute(1.0), read("a", 1.0)),
                offset=0.0,
            ),
        )
        result = run(ts, "ccp")
        # Lock point is at the write of a (t=1): b releases at t=2 when
        # the write-a operation completes.
        assert result.job("H#0").total_blocking_time() == 0.0

    def test_all_locks_released_at_commit_regardless(self):
        ts = _ts(TransactionSpec("T", (read("a", 1.0), write("b", 1.0)),))
        sim = Simulator(ts, CCP())
        result = sim.run()
        assert sim.table.items_held_by(result.job("T#0")) == {}


class TestCCPInvariants:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_workloads_keep_guarantees(self, seed):
        from repro.workloads.generator import WorkloadConfig, generate_taskset

        ts = generate_taskset(
            WorkloadConfig(
                n_transactions=5, n_items=6, write_probability=0.4,
                hot_access_probability=0.8, seed=seed,
            )
        )
        result = Simulator(ts, CCP(), SimConfig(horizon=600.0)).run()
        assert_deadlock_free(result)
        assert_serializable(result)
        assert result.aborted_restarts == 0

    def test_example4_under_ccp_serializable(self, ex4):
        result = run(ex4, "ccp")
        assert_serializable(result)
        assert_deadlock_free(result)

    def test_fuzzer_counterexample_now_serializable(self):
        """The exact 4-transaction interleaving that broke the naive
        (non-two-phase) early-unlock rule; pinned as a regression test."""
        ts = _ts(
            TransactionSpec("T1", (write("c", 2.0), compute(2.0)), offset=5.0),
            TransactionSpec("T2", (read("a", 1.0), compute(1.0)), offset=6.0),
            TransactionSpec(
                "T3", (write("a", 2.0), read("c", 2.0), read("b", 2.0)), offset=4.0
            ),
            TransactionSpec(
                "T4", (read("c", 2.0), write("b", 2.0), compute(1.0)), offset=2.0
            ),
        )
        result = run(ts, "ccp")
        assert_serializable(result)
