"""Tests for the lemma monitors (repro.verify.lemmas).

Two directions: (1) the real protocol never trips a monitor, on the paper
examples and on random workloads; (2) each monitor actually fires when fed
a state that violates its lemma.
"""

import pytest

from repro.engine.job import Job
from repro.engine.lock_table import LockTable
from repro.engine.simulator import SimConfig, Simulator
from repro.exceptions import InvariantViolation
from repro.model.priorities import assign_by_order
from repro.model.spec import LockMode, TransactionSpec, read, write
from repro.protocols import make_protocol
from repro.verify import LemmaCheckingPCPDA
from repro.workloads.examples import (
    example1_taskset,
    example3_taskset,
    example4_taskset,
    example5_taskset,
)
from repro.workloads.generator import WorkloadConfig, generate_taskset


class TestMonitorsStaySilent:
    @pytest.mark.parametrize(
        "build, config",
        [
            (example1_taskset, None),
            (example3_taskset, SimConfig(horizon=11.0, max_instances=2)),
            (example4_taskset, None),
            (example5_taskset, None),
        ],
    )
    def test_paper_examples_pass_all_lemmas(self, build, config):
        protocol = LemmaCheckingPCPDA()
        result = Simulator(build(), protocol, config).run()
        assert protocol.checks_performed > 0
        assert result.deadlock is None

    @pytest.mark.parametrize("seed", range(12))
    def test_random_workloads_pass_all_lemmas(self, seed):
        taskset = generate_taskset(
            WorkloadConfig(
                n_transactions=6, n_items=5, write_probability=0.5,
                hot_access_probability=0.9, target_utilization=0.7,
                seed=seed,
            )
        )
        protocol = LemmaCheckingPCPDA()
        Simulator(taskset, protocol, SimConfig()).run()
        assert protocol.checks_performed > 0

    def test_constructible_by_name(self):
        protocol = make_protocol("pcp-da-checked")
        assert isinstance(protocol, LemmaCheckingPCPDA)

    def test_checked_run_matches_unchecked_run(self):
        """The monitors are pure observers: traces must be identical."""
        taskset = example4_taskset()
        checked = Simulator(taskset, LemmaCheckingPCPDA()).run()
        plain = Simulator(example4_taskset(), make_protocol("pcp-da")).run()
        assert [
            (e.time, e.kind, e.job) for e in checked.trace.sched_events
        ] == [(e.time, e.kind, e.job) for e in plain.trace.sched_events]


class TestMonitorsFire:
    """Feed each monitor a hand-built violating state."""

    def _setup(self):
        ts = assign_by_order([
            TransactionSpec("H", (write("a", 1.0), read("b", 1.0))),
            TransactionSpec("L", (read("a", 1.0), write("b", 1.0))),
        ])
        protocol = LemmaCheckingPCPDA()
        table = LockTable()
        protocol.bind(ts, table)
        jobs = {name: Job(ts[name], 0, 0.0) for name in ts.names}
        return ts, protocol, table, jobs

    def test_lemma_3_fires_on_excess_inheritance(self):
        ts, protocol, table, jobs = self._setup()
        low = jobs["L"]
        protocol._jobs_seen.add(low)
        # L holds no read locks, yet runs at an inherited priority above
        # its base: Lemma 3 forbids this (no write lock can inherit).
        low.running_priority = 99
        with pytest.raises(InvariantViolation, match="Lemma 3"):
            protocol._check_lemma_3()

    def test_lemma_3_allows_inheritance_up_to_read_ceiling(self):
        ts, protocol, table, jobs = self._setup()
        low = jobs["L"]
        table.grant(low, "a", LockMode.READ)  # Wceil(a) = P_H
        protocol._jobs_seen.add(low)
        low.running_priority = ts.priority_of("H")
        protocol._check_lemma_3()  # must not raise

    def test_lemma_5_fires_on_two_low_priority_ceiling_holders(self):
        ts, protocol, table, jobs = self._setup()
        # Two artificial low-priority jobs both read-lock items whose
        # Wceil >= P_H — the state Lemma 5 proves unreachable.
        extra_spec = TransactionSpec("X", (read("b", 1.0),), priority=None)
        ts2 = assign_by_order([
            TransactionSpec("H", (write("a", 1.0), write("b", 1.0))),
            TransactionSpec("L1", (read("a", 1.0),)),
            TransactionSpec("L2", (read("b", 1.0),)),
        ])
        protocol = LemmaCheckingPCPDA()
        table = LockTable()
        protocol.bind(ts2, table)
        h = Job(ts2["H"], 0, 0.0)
        l1 = Job(ts2["L1"], 0, 0.0)
        l2 = Job(ts2["L2"], 0, 0.0)
        table.grant(l1, "a", LockMode.READ)   # Wceil(a) = P_H
        table.grant(l2, "b", LockMode.READ)   # Wceil(b) = P_H
        with pytest.raises(InvariantViolation, match="Lemma 5"):
            protocol._check_lemma_5(h)

    def test_lemma_1_2_fires_on_write_only_blocker(self):
        from repro.engine.interfaces import Deny

        ts, protocol, table, jobs = self._setup()
        low, high = jobs["L"], jobs["H"]
        table.grant(low, "b", LockMode.WRITE)  # write lock only
        deny = Deny((low,), "synthetic")
        with pytest.raises(InvariantViolation, match="Lemma 1/2"):
            protocol._check_lemma_1_and_2(deny, high)

    def test_lemma_4_fires_on_low_ceiling_blocker(self):
        from repro.engine.interfaces import Deny

        ts2 = assign_by_order([
            TransactionSpec("H", (read("c", 1.0),)),
            TransactionSpec("M", (write("c", 1.0),)),
            TransactionSpec("L", (read("c", 1.0),)),
        ])
        protocol = LemmaCheckingPCPDA()
        table = LockTable()
        protocol.bind(ts2, table)
        h = Job(ts2["H"], 0, 0.0)
        l = Job(ts2["L"], 0, 0.0)
        # L read-locks c whose Wceil = P_M < P_H: blaming L for blocking H
        # violates Lemma 4.
        table.grant(l, "c", LockMode.READ)
        deny = Deny((l,), "synthetic")
        with pytest.raises(InvariantViolation, match="Lemma 4"):
            protocol._check_lemma_4(deny, h)
