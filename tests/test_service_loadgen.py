"""Load-generator tests, run entirely in-process (no sockets).

The generator is exercised against an in-process client factory, so
these tests cover worker scheduling, the mix draw, the abort/deadline
chaos paths, and the client-side serializability verdict — the TCP soak
variant lives in ``test_service_soak.py`` behind the ``service_soak``
marker.
"""

import asyncio

import pytest

from repro.db.history import History
from repro.exceptions import SpecificationError
from repro.service import LockManager, ServiceConfig
from repro.service.client import in_process_client
from repro.service.loadgen import (
    LoadgenConfig,
    LoadReport,
    history_from_events,
    run_loadgen,
)
from repro.service.stats import LatencyHistogram
from repro.workloads.generator import WorkloadConfig, generate_taskset


def make_manager(protocol="pcp-da", *, seed=11, max_sessions=64):
    catalog = generate_taskset(WorkloadConfig(
        n_transactions=5, n_items=6, write_probability=0.5,
        rmw_probability=0.25, seed=seed,
    ))
    return LockManager(
        catalog, protocol, ServiceConfig(max_sessions=max_sessions)
    )


def run_against(manager, config):
    async def body():
        async def connect():
            return in_process_client(manager)

        try:
            return await run_loadgen(config, connect)
        finally:
            await manager.shutdown()

    return asyncio.run(body())


class TestConfigValidation:
    def test_rejects_zero_clients(self):
        with pytest.raises(SpecificationError):
            LoadgenConfig(clients=0)

    def test_rejects_zero_budget(self):
        with pytest.raises(SpecificationError):
            LoadgenConfig(transactions_per_client=0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(SpecificationError):
            LoadgenConfig(arrival_rate_hz=0.0)

    def test_rejects_bad_abort_probability(self):
        with pytest.raises(SpecificationError):
            LoadgenConfig(abort_probability=1.5)


class TestClosedLoop:
    def test_serializable_run_with_counters(self):
        manager = make_manager()
        config = LoadgenConfig(
            clients=6, transactions_per_client=4, seed=3
        )
        report = run_against(manager, config)
        assert report.serializable, report.violation
        assert report.completed == 24
        assert report.latency.total == report.completed
        assert len(report.serialization_order) == report.completed
        assert report.stats is not None
        assert report.stats.commits == report.completed
        assert report.throughput_tps > 0

    def test_chaos_aborts_counted_and_still_serializable(self):
        manager = make_manager(seed=29)
        config = LoadgenConfig(
            clients=4, transactions_per_client=6, seed=5,
            abort_probability=0.4,
        )
        report = run_against(manager, config)
        assert report.serializable, report.violation
        assert report.client_aborts > 0
        assert report.completed + report.client_aborts <= 24

    def test_mix_restricts_names(self):
        manager = make_manager()
        only = next(iter(manager.catalog)).name
        config = LoadgenConfig(
            clients=2, transactions_per_client=3, seed=1,
            mix={only: 1.0},
        )
        report = run_against(manager, config)
        assert report.serializable
        assert set(report.serialization_order) <= {
            f"{only}#{i}" for i in range(6)
        }

    def test_mix_with_unknown_name_fails(self):
        manager = make_manager()
        config = LoadgenConfig(
            clients=1, transactions_per_client=1, mix={"T999": 1.0}
        )
        with pytest.raises(SpecificationError, match="T999"):
            run_against(manager, config)


class TestOpenLoop:
    def test_open_loop_serializable(self):
        manager = make_manager(seed=47)
        config = LoadgenConfig(
            clients=3, transactions_per_client=4, seed=9,
            arrival_rate_hz=500.0,
        )
        report = run_against(manager, config)
        assert report.serializable, report.violation
        assert report.completed == 12


class TestHistoryRoundTrip:
    def test_history_from_events_matches_manager_history(self):
        manager = make_manager()
        config = LoadgenConfig(clients=3, transactions_per_client=3, seed=7)

        async def body():
            async def connect():
                return in_process_client(manager)

            report = await run_loadgen(config, connect)
            rebuilt = history_from_events(manager.history_events())
            return report, rebuilt, manager.history

        report, rebuilt, original = asyncio.run(body())
        assert report.serializable
        assert [
            (e.kind, e.job, e.item, e.version_seq, e.time)
            for e in rebuilt.events
        ] == [
            (e.kind, e.job, e.item, e.version_seq, e.time)
            for e in original.events
        ]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown history event"):
            history_from_events([{"kind": "mystery", "job": "T1#0"}])

    def test_empty_events_give_empty_history(self):
        history = history_from_events([])
        assert isinstance(history, History)
        assert list(history.events) == []


class TestReportRender:
    def test_render_contains_verdict_and_histogram(self):
        manager = make_manager()
        config = LoadgenConfig(clients=4, transactions_per_client=3, seed=2)
        report = run_against(manager, config)
        text = report.render()
        assert "serializability: OK" in text
        assert "end-to-end commit latency" in text
        assert "blocking by priority band" in text
        assert f"committed={report.completed}" in text

    def test_render_reports_violation(self):
        report = LoadReport(
            config=LoadgenConfig(clients=1, transactions_per_client=1),
            protocol="pcp-da",
            wall_s=1.0,
            serializable=False,
            violation="cycle T1#0 -> T2#0 -> T1#0",
        )
        text = report.render()
        assert "serializability: VIOLATION" in text
        assert "cycle" in text

    def test_latency_histogram_percentiles(self):
        hist = LatencyHistogram()
        for value in (0.001, 0.002, 0.004, 0.100):
            hist.record(value)
        assert hist.total == 4
        assert hist.percentile(50) >= 0.001
        # Percentiles answer with the bucket's upper bound, so they can
        # only over-report relative to the exact sample.
        assert hist.percentile(100) >= hist.max
        round_tripped = LatencyHistogram.from_dict(hist.to_dict())
        assert round_tripped.counts == hist.counts
        assert round_tripped.total == hist.total
