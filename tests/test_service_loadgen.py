"""Load-generator tests, run entirely in-process (no sockets).

The generator is exercised against an in-process client factory, so
these tests cover worker scheduling, the mix draw, the abort/deadline
chaos paths, and the client-side serializability verdict — the TCP soak
variant lives in ``test_service_soak.py`` behind the ``service_soak``
marker.
"""

import asyncio

import pytest

from repro.db.history import History
from repro.exceptions import SpecificationError
from repro.service import LockManager, ServiceConfig
from repro.service.client import in_process_client
from repro.service.loadgen import (
    LoadgenConfig,
    LoadReport,
    history_from_events,
    run_loadgen,
)
from repro.service.stats import LatencyHistogram
from repro.workloads.generator import WorkloadConfig, generate_taskset


def make_manager(protocol="pcp-da", *, seed=11, max_sessions=64):
    catalog = generate_taskset(WorkloadConfig(
        n_transactions=5, n_items=6, write_probability=0.5,
        rmw_probability=0.25, seed=seed,
    ))
    return LockManager(
        catalog, protocol, ServiceConfig(max_sessions=max_sessions)
    )


def run_against(manager, config):
    async def body():
        async def connect():
            return in_process_client(manager)

        try:
            return await run_loadgen(config, connect)
        finally:
            await manager.shutdown()

    return asyncio.run(body())


class TestConfigValidation:
    def test_rejects_zero_clients(self):
        with pytest.raises(SpecificationError):
            LoadgenConfig(clients=0)

    def test_rejects_zero_budget(self):
        with pytest.raises(SpecificationError):
            LoadgenConfig(transactions_per_client=0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(SpecificationError):
            LoadgenConfig(arrival_rate_hz=0.0)

    def test_rejects_bad_abort_probability(self):
        with pytest.raises(SpecificationError):
            LoadgenConfig(abort_probability=1.5)


class TestClosedLoop:
    def test_serializable_run_with_counters(self):
        manager = make_manager()
        config = LoadgenConfig(
            clients=6, transactions_per_client=4, seed=3
        )
        report = run_against(manager, config)
        assert report.serializable, report.violation
        assert report.completed == 24
        assert report.latency.total == report.completed
        assert len(report.serialization_order) == report.completed
        assert report.stats is not None
        assert report.stats.commits == report.completed
        assert report.throughput_tps > 0

    def test_chaos_aborts_counted_and_still_serializable(self):
        manager = make_manager(seed=29)
        config = LoadgenConfig(
            clients=4, transactions_per_client=6, seed=5,
            abort_probability=0.4,
        )
        report = run_against(manager, config)
        assert report.serializable, report.violation
        assert report.client_aborts > 0
        assert report.completed + report.client_aborts <= 24

    def test_mix_restricts_names(self):
        manager = make_manager()
        only = next(iter(manager.catalog)).name
        config = LoadgenConfig(
            clients=2, transactions_per_client=3, seed=1,
            mix={only: 1.0},
        )
        report = run_against(manager, config)
        assert report.serializable
        assert set(report.serialization_order) <= {
            f"{only}#{i}" for i in range(6)
        }

    def test_mix_with_unknown_name_fails(self):
        manager = make_manager()
        config = LoadgenConfig(
            clients=1, transactions_per_client=1, mix={"T999": 1.0}
        )
        with pytest.raises(SpecificationError, match="T999"):
            run_against(manager, config)


class TestOpenLoop:
    def test_open_loop_serializable(self):
        manager = make_manager(seed=47)
        config = LoadgenConfig(
            clients=3, transactions_per_client=4, seed=9,
            arrival_rate_hz=500.0,
        )
        report = run_against(manager, config)
        assert report.serializable, report.violation
        assert report.completed == 12


class TestHistoryRoundTrip:
    def test_history_from_events_matches_manager_history(self):
        manager = make_manager()
        config = LoadgenConfig(clients=3, transactions_per_client=3, seed=7)

        async def body():
            async def connect():
                return in_process_client(manager)

            report = await run_loadgen(config, connect)
            rebuilt = history_from_events(manager.history_events())
            return report, rebuilt, manager.history

        report, rebuilt, original = asyncio.run(body())
        assert report.serializable
        assert [
            (e.kind, e.job, e.item, e.version_seq, e.time)
            for e in rebuilt.events
        ] == [
            (e.kind, e.job, e.item, e.version_seq, e.time)
            for e in original.events
        ]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown history event"):
            history_from_events([{"kind": "mystery", "job": "T1#0"}])

    def test_empty_events_give_empty_history(self):
        history = history_from_events([])
        assert isinstance(history, History)
        assert list(history.events) == []


class TestReportRender:
    def test_render_contains_verdict_and_histogram(self):
        manager = make_manager()
        config = LoadgenConfig(clients=4, transactions_per_client=3, seed=2)
        report = run_against(manager, config)
        text = report.render()
        assert "serializability: OK" in text
        assert "end-to-end commit latency" in text
        assert "blocking by priority band" in text
        assert f"committed={report.completed}" in text

    def test_render_reports_violation(self):
        report = LoadReport(
            config=LoadgenConfig(clients=1, transactions_per_client=1),
            protocol="pcp-da",
            wall_s=1.0,
            serializable=False,
            violation="cycle T1#0 -> T2#0 -> T1#0",
        )
        text = report.render()
        assert "serializability: VIOLATION" in text
        assert "cycle" in text

    def test_latency_histogram_percentiles(self):
        hist = LatencyHistogram()
        for value in (0.001, 0.002, 0.004, 0.100):
            hist.record(value)
        assert hist.total == 4
        assert hist.percentile(50) >= 0.001
        # Percentiles answer with the bucket's upper bound, so they can
        # only over-report relative to the exact sample.
        assert hist.percentile(100) >= hist.max
        round_tripped = LatencyHistogram.from_dict(hist.to_dict())
        assert round_tripped.counts == hist.counts
        assert round_tripped.total == hist.total


class TestChaosDeterministic:
    """The loadgen-chaos abort branch at probability 1.0: every
    transaction takes it, making the counters exact rather than
    statistical."""

    def test_full_chaos_aborts_everything(self):
        manager = make_manager(seed=31)
        config = LoadgenConfig(
            clients=3, transactions_per_client=5, seed=2,
            abort_probability=1.0,
        )
        report = run_against(manager, config)
        assert report.completed == 0
        assert report.client_aborts == 15
        assert report.serializable  # nothing committed, trivially so
        assert report.serialization_order == ()
        assert report.stats is not None
        assert report.stats.client_aborts == 15
        assert report.stats.commits == 0


class TestBurstKnobs:
    def test_rejects_sub_unit_burst_factor(self):
        with pytest.raises(SpecificationError):
            LoadgenConfig(burst_factor=0.9)

    def test_rejects_nonpositive_burst_period(self):
        with pytest.raises(SpecificationError):
            LoadgenConfig(burst_period_s=0.0)

    def test_rejects_zero_burst_duty(self):
        with pytest.raises(SpecificationError):
            LoadgenConfig(burst_duty=0.0)

    def test_current_rate_square_wave(self):
        from repro.service.loadgen import _Worker

        config = LoadgenConfig(
            arrival_rate_hz=100.0, burst_factor=4.0,
            burst_period_s=1.0, burst_duty=0.25,
        )
        report = LoadReport(config=config, protocol="pcp-da", wall_s=0.0)
        worker = _Worker(
            0, None, config,
            [{"name": "T1", "operations": []}], report, None,
        )
        assert worker._current_rate(0.1) == 400.0   # inside the burst
        assert worker._current_rate(0.25) == 100.0  # at the edge: base
        assert worker._current_rate(0.9) == 100.0
        assert worker._current_rate(1.1) == 400.0   # next cycle's burst

    def test_default_factor_keeps_constant_rate(self):
        from repro.service.loadgen import _Worker

        config = LoadgenConfig(arrival_rate_hz=100.0)
        report = LoadReport(config=config, protocol="pcp-da", wall_s=0.0)
        worker = _Worker(
            0, None, config,
            [{"name": "T1", "operations": []}], report, None,
        )
        assert all(
            worker._current_rate(t) == 100.0 for t in (0.0, 0.1, 0.7, 3.2)
        )

    def test_bursty_open_loop_run_stays_serializable(self):
        manager = make_manager(seed=53)
        config = LoadgenConfig(
            clients=3, transactions_per_client=5, seed=4,
            arrival_rate_hz=800.0, burst_factor=6.0,
            burst_period_s=0.05, burst_duty=0.3,
        )
        report = run_against(manager, config)
        assert report.serializable, report.violation
        assert report.completed == 15


class TestZeroGrantShardWarning:
    """_render_shards' silent-misrouting detector, pinned on synthetic
    stats documents."""

    def _shard_entry(self, shard, grants, commits):
        return {
            "shard": shard, "items": 3, "sessions": commits,
            "grants": grants, "denials": 0, "commits": commits,
            "commit_latency": LatencyHistogram().to_dict(),
        }

    def _report(self, completed, shards):
        report = LoadReport(
            config=LoadgenConfig(clients=1, transactions_per_client=1),
            protocol="pcp-da", wall_s=1.0, completed=completed,
        )
        report.stats_doc = {"shards": shards}
        return report

    def test_idle_shard_warned_by_number(self):
        report = self._report(5, [
            self._shard_entry(0, grants=10, commits=5),
            self._shard_entry(1, grants=0, commits=0),
        ])
        text = report.render()
        assert "WARNING: shard(s) 1 granted zero lock" in text
        assert "possible silent misrouting" in text

    def test_no_warning_when_every_shard_granted(self):
        report = self._report(5, [
            self._shard_entry(0, grants=10, commits=3),
            self._shard_entry(1, grants=4, commits=2),
        ])
        assert "WARNING" not in report.render()

    def test_no_warning_on_an_empty_run(self):
        # nothing committed anywhere: idle shards are expected, not
        # suspicious
        report = self._report(0, [
            self._shard_entry(0, grants=0, commits=0),
            self._shard_entry(1, grants=0, commits=0),
        ])
        assert "WARNING" not in report.render()
