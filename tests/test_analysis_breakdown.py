"""Unit tests for breakdown utilisation (repro.analysis.breakdown)."""

import pytest

from repro.analysis.breakdown import breakdown_utilization
from repro.analysis.rm_bound import liu_layland_bound
from repro.exceptions import AnalysisError
from repro.model.priorities import assign_by_order
from repro.model.spec import TransactionSpec, compute, read, write


class TestBreakdownUtilization:
    def test_independent_set_reaches_liu_layland(self):
        """Without blocking, the RM-bound breakdown equals the bound at the
        binding level (non-harmonic periods, n=2: 0.828...)."""
        ts = assign_by_order([
            TransactionSpec("A", (compute(1.0),), period=10.0),
            TransactionSpec("B", (compute(1.4),), period=14.0),
        ])
        breakdown = breakdown_utilization(ts, "pcp-da", "rm-bound")
        assert breakdown == pytest.approx(liu_llound2(), abs=1e-3)

    def test_rta_breakdown_at_least_rm_bound(self):
        ts = assign_by_order([
            TransactionSpec("A", (compute(1.0),), period=10.0),
            TransactionSpec("B", (compute(1.4),), period=14.0),
        ])
        rm = breakdown_utilization(ts, "pcp-da", "rm-bound")
        rta = breakdown_utilization(ts, "pcp-da", "rta")
        assert rta >= rm - 1e-6

    def test_pcp_da_breakdown_beats_rw_pcp_under_write_contention(self):
        """The paper's headline: a lower B_i buys real utilisation."""
        t1 = TransactionSpec("T1", (read("a", 1.0), read("b", 1.0)), period=10.0)
        t2 = TransactionSpec(
            "T2", (write("a", 2.0), write("b", 2.0)), period=40.0
        )
        ts = assign_by_order([t1, t2])
        da = breakdown_utilization(ts, "pcp-da", "rm-bound")
        rw = breakdown_utilization(ts, "rw-pcp", "rm-bound")
        assert da > rw

    def test_scale_clamped_by_period(self):
        """Breakdown never scales C_i past its period."""
        ts = assign_by_order([
            TransactionSpec("A", (compute(9.0),), period=10.0),
        ])
        breakdown = breakdown_utilization(ts, "pcp-da", "rm-bound")
        assert breakdown <= 1.0 + 1e-6

    def test_unknown_test_rejected(self):
        ts = assign_by_order([
            TransactionSpec("A", (compute(1.0),), period=10.0),
        ])
        with pytest.raises(AnalysisError):
            breakdown_utilization(ts, "pcp-da", "magic")


def liu_llound2():
    """The n=2 Liu & Layland bound (helper keeps the test line short)."""
    return liu_layland_bound(2)
