"""Tests for the priority-inversion metric — the paper's Section 1 problem.

"Unfortunately, the duration of priority inversion can be indefinitely
long because some other intermediate priority transactions can repeatedly
preempt T_L."  These tests quantify exactly that on the classic
three-transaction scenario, and verify the ceiling protocols' bound.
"""

import pytest

from repro.engine.simulator import SimConfig
from repro.model.priorities import assign_by_order
from repro.model.spec import TransactionSpec, compute, read, write
from repro.trace.metrics import priority_inversion_time
from tests.conftest import run


def _inversion_scenario(n_middlemen=1, middle_len=5.0):
    """H blocks on x held by L while middle transactions interpose."""
    specs = [TransactionSpec("H", (read("x", 1.0),), offset=1.0)]
    for i in range(n_middlemen):
        specs.append(
            TransactionSpec(
                f"M{i + 1}", (compute(middle_len),), offset=2.0 + i
            )
        )
    specs.append(TransactionSpec("L", (write("x", 3.0),), offset=0.0))
    return assign_by_order(specs)


class TestInversionMetric:
    def test_plain_2pl_unbounded_inversion(self):
        """Without inheritance, every middleman extends H's inversion."""
        one = run(_inversion_scenario(1), "2pl",
                  SimConfig(deadlock_action="abort_lowest"))
        two = run(_inversion_scenario(2), "2pl",
                  SimConfig(deadlock_action="abort_lowest"))
        inv_one = priority_inversion_time(one, "H#0")
        inv_two = priority_inversion_time(two, "H#0")
        assert inv_one == pytest.approx(7.0)   # M1 (5) + L's tail (2)
        assert inv_two > inv_one               # grows with middlemen

    def test_inheritance_bounds_inversion_to_the_critical_section(self):
        for protocol in ("pip-2pl", "rw-pcp"):
            result = run(_inversion_scenario(2), protocol,
                         SimConfig(deadlock_action="abort_lowest"))
            inversion = priority_inversion_time(result, "H#0")
            # L inherits P_H at t=1 and finishes its remaining 2 units:
            # inversion is exactly the critical-section tail.
            assert inversion == pytest.approx(2.0), protocol

    def test_pcp_da_eliminates_this_inversion_entirely(self):
        """H only *reads* x, which L write-locks: PCP-DA's Case 1 lets H
        preempt — zero inversion where RW-PCP still pays the tail."""
        result = run(_inversion_scenario(2), "pcp-da")
        assert priority_inversion_time(result, "H#0") == 0.0

    def test_inversion_counts_boosted_blockers(self):
        """A blocker running at inherited priority still counts as
        inversion (base priorities decide)."""
        result = run(_inversion_scenario(1), "pip-2pl",
                     SimConfig(deadlock_action="abort_lowest"))
        # During [1, 3) L runs boosted to P_H; H is blocked: inversion.
        assert priority_inversion_time(result, "H#0") == pytest.approx(2.0)

    def test_zero_for_unblocked_jobs(self, ex4):
        result = run(ex4, "pcp-da")
        for job in result.jobs:
            assert priority_inversion_time(result, job.name) == 0.0

    def test_example4_rw_pcp_inversions(self, ex4):
        result = run(ex4, "rw-pcp")
        # T3 blocked 1..5 while T4 (lower) runs: 4 units of inversion.
        assert priority_inversion_time(result, "T3#0") == pytest.approx(4.0)
        # T1 blocked 4..5 while T4 runs: 1 unit.
        assert priority_inversion_time(result, "T1#0") == pytest.approx(1.0)
