"""Tests for the open-system workload generator (Poisson arrivals)."""

import pytest

from repro.engine.simulator import SimConfig, Simulator
from repro.exceptions import SpecificationError
from repro.protocols import make_protocol
from repro.trace.metrics import compute_metrics
from repro.verify import assert_serializable
from repro.workloads.open_system import (
    OpenSystemConfig,
    generate_open_system,
    offered_load,
)


class TestGeneration:
    def test_deterministic(self):
        config = OpenSystemConfig(seed=5)
        a = generate_open_system(config)
        b = generate_open_system(config)
        assert a.describe() == b.describe()

    def test_arrivals_within_window(self):
        ts = generate_open_system(OpenSystemConfig(duration=100.0, seed=1))
        assert all(0.0 <= s.offset < 100.0 for s in ts)

    def test_all_one_shot_with_deadlines(self):
        ts = generate_open_system(OpenSystemConfig(seed=2))
        for spec in ts:
            assert spec.period is None
            assert spec.deadline is not None
            assert spec.deadline == pytest.approx(
                4.0 * spec.execution_time
            )  # default slack factor

    def test_arrival_count_tracks_rate(self):
        low = generate_open_system(
            OpenSystemConfig(arrival_rate=0.05, duration=400.0, seed=3)
        )
        high = generate_open_system(
            OpenSystemConfig(arrival_rate=0.3, duration=400.0, seed=3)
        )
        assert len(high) > len(low)
        # Poisson mean = rate * duration; allow generous slack.
        assert len(high) == pytest.approx(0.3 * 400.0, rel=0.4)

    def test_priorities_total_order(self):
        ts = generate_open_system(OpenSystemConfig(seed=4))
        priorities = [s.priority for s in ts]
        assert len(set(priorities)) == len(priorities)

    def test_shorter_class_gets_higher_priority_band(self):
        ts = generate_open_system(OpenSystemConfig(seed=6, n_classes=2))
        specs = sorted(ts, key=lambda s: -(s.priority or 0))
        half = len(specs) // 2
        top_mean = sum(s.execution_time for s in specs[:half]) / max(half, 1)
        bottom = specs[half:]
        bottom_mean = sum(s.execution_time for s in bottom) / max(len(bottom), 1)
        assert top_mean <= bottom_mean + 1e-9

    def test_offered_load(self):
        ts = generate_open_system(OpenSystemConfig(seed=7, duration=100.0))
        load = offered_load(ts, 100.0)
        assert load == pytest.approx(
            sum(s.execution_time for s in ts) / 100.0
        )

    def test_invalid_configs(self):
        with pytest.raises(SpecificationError):
            OpenSystemConfig(arrival_rate=0.0)
        with pytest.raises(SpecificationError):
            OpenSystemConfig(duration=-1.0)
        with pytest.raises(SpecificationError):
            OpenSystemConfig(slack_factor=0.0)
        with pytest.raises(SpecificationError):
            OpenSystemConfig(n_classes=0)


class TestSimulation:
    @pytest.mark.parametrize("protocol", ["pcp-da", "2pl-hp", "occ-bc"])
    def test_firm_open_system_runs_clean(self, protocol):
        config = OpenSystemConfig(arrival_rate=0.08, duration=150.0, seed=9)
        ts = generate_open_system(config)
        result = Simulator(
            ts, make_protocol(protocol),
            SimConfig(horizon=400.0, on_miss="abort"),
        ).run()
        assert_serializable(result)
        metrics = compute_metrics(result)
        assert metrics.total_jobs == len(ts)
        # Every job either committed or was dropped at its deadline.
        assert metrics.committed_jobs + metrics.missed_jobs >= metrics.total_jobs

    def test_miss_ratio_grows_with_rate(self):
        def miss_at(rate):
            ts = generate_open_system(
                OpenSystemConfig(arrival_rate=rate, duration=150.0, seed=11)
            )
            result = Simulator(
                ts, make_protocol("pcp-da"),
                SimConfig(horizon=600.0, on_miss="abort"),
            ).run()
            return compute_metrics(result).miss_ratio

        assert miss_at(0.6) >= miss_at(0.05)
