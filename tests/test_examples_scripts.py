"""Every example script must run cleanly end to end (deliverable guard).

The scripts are executed in-process (imported with ``runpy``) with small
sweep arguments so the whole file stays fast.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run_script(name: str, argv):
    """Execute an example script as __main__ with the given argv."""
    path = EXAMPLES_DIR / name
    old_argv = sys.argv
    sys.argv = [str(path)] + argv
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExampleScripts:
    def test_directory_contains_all_advertised_scripts(self):
        names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "paper_figures.py",
            "avionics_monitor.py",
            "protocol_shootout.py",
            "schedulability_study.py",
            "firm_overload.py",
            "step_debugger.py",
        } <= names

    def test_quickstart(self, capsys):
        _run_script("quickstart.py", [])
        out = capsys.readouterr().out
        assert "pcp-da" in out and "rw-pcp" in out
        assert "total blocking" in out

    def test_paper_figures(self, capsys):
        _run_script("paper_figures.py", [])
        out = capsys.readouterr().out
        assert "Figure 2" in out and "Figure 5" in out
        assert "DEADLOCK" in out

    def test_avionics_monitor(self, capsys):
        _run_script("avionics_monitor.py", [])
        out = capsys.readouterr().out
        assert "SCHEDULABLE" in out
        assert "AttitudeCtl" in out

    def test_protocol_shootout(self, capsys):
        _run_script("protocol_shootout.py", ["--seeds", "2"])
        out = capsys.readouterr().out
        assert "pcp-da" in out and "2pl-hp" in out

    def test_schedulability_study(self, capsys):
        _run_script("schedulability_study.py", ["--sets", "2"])
        out = capsys.readouterr().out
        assert "breakdown" in out.lower()
        assert "da vs rw" in out

    def test_firm_overload(self, capsys):
        _run_script("firm_overload.py", ["--seeds", "2"])
        out = capsys.readouterr().out
        assert "miss%" in out

    def test_step_debugger(self, capsys):
        _run_script("step_debugger.py", [])
        out = capsys.readouterr().out
        assert "t = 4" in out
        assert "history is serializable." in out

    def test_step_debugger_other_protocol(self, capsys):
        _run_script("step_debugger.py", ["--protocol", "rw-pcp"])
        out = capsys.readouterr().out
        assert "BLOCKED" in out  # T3's ceiling blocking is visible
