"""Tests for the batch runner and summary statistics (repro.stats)."""

import math

import pytest

from repro.stats import (
    BatchRow,
    Summary,
    paired_difference,
    run_batch,
    summarize,
    summarize_values,
)
from repro.workloads.generator import WorkloadConfig


class TestSummaryStatistics:
    def test_single_value(self):
        s = summarize_values([3.0])
        assert s.n == 1 and s.mean == 3.0
        assert s.stdev == 0.0 and s.ci95_half_width == 0.0

    def test_known_sample(self):
        s = summarize_values([1.0, 2.0, 3.0, 4.0])
        assert s.mean == 2.5
        assert s.stdev == pytest.approx(1.2909944, rel=1e-6)
        assert s.ci95_half_width == pytest.approx(
            1.96 * 1.2909944 / math.sqrt(4), rel=1e-6
        )
        lo, hi = s.ci95
        assert lo < 2.5 < hi

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_values([])

    def test_render(self):
        assert "n=2" in summarize_values([1.0, 2.0]).render()


class TestRunBatch:
    @pytest.fixture(scope="class")
    def rows(self):
        workloads = [
            WorkloadConfig(n_transactions=4, seed=s, target_utilization=0.5,
                           hot_access_probability=0.9, write_probability=0.5)
            for s in range(4)
        ]
        return run_batch(["pcp-da", "rw-pcp"], workloads)

    def test_one_row_per_pair(self, rows):
        assert len(rows) == 8
        assert {r.protocol for r in rows} == {"pcp-da", "rw-pcp"}
        assert {r.seed for r in rows} == {0, 1, 2, 3}

    def test_paired_sets_share_utilization(self, rows):
        per_seed = {}
        for row in rows:
            per_seed.setdefault(row.seed, set()).add(round(row.utilization, 9))
        for values in per_seed.values():
            assert len(values) == 1  # same generated task set per seed

    def test_summarize_by_protocol(self, rows):
        table = summarize(rows, metric="total_blocking_time")
        assert set(table) == {("pcp-da",), ("rw-pcp",)}
        assert all(s.n == 4 for s in table.values())

    def test_paired_difference_direction(self, rows):
        diff = paired_difference(
            rows, metric="total_blocking_time",
            baseline="rw-pcp", contender="pcp-da",
        )
        # PCP-DA blocks no more than RW-PCP in aggregate.
        assert diff.mean >= -1e-9

    def test_paired_difference_requires_both(self, rows):
        with pytest.raises(ValueError):
            paired_difference(
                rows, metric="miss_ratio", baseline="rw-pcp", contender="ccp"
            )

    def test_metric_lookup_errors(self):
        row = BatchRow("p", 0, 0.5, 1.0, 1.0, 0.0, 0, None)
        with pytest.raises(KeyError):
            row.metric("mean_response_time")
        assert row.metric("total_blocking_time") == 1.0
