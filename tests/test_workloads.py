"""Unit tests for workload generation and the example fixtures."""

import pytest

from repro.exceptions import SpecificationError
from repro.model.validation import validate_taskset
from repro.workloads.examples import (
    example1_taskset,
    example3_taskset,
    example4_taskset,
    example5_taskset,
)
from repro.workloads.generator import WorkloadConfig, generate_taskset


class TestExampleFixtures:
    def test_example1_shape(self):
        ts = example1_taskset()
        assert ts.names == ("T1", "T2", "T3")
        assert ts["T1"].read_set == frozenset({"x"})
        assert ts["T3"].write_set == frozenset({"x"})
        assert ts["T3"].execution_time == 3.0

    def test_example3_shape(self):
        ts = example3_taskset()
        assert ts["T1"].period == 5.0
        assert ts["T1"].offset == 1.0
        assert ts["T2"].execution_time == 5.0
        assert ts["T2"].write_set == frozenset({"x", "y"})

    def test_example4_shape(self):
        ts = example4_taskset()
        assert [s.execution_time for s in ts] == [2.0, 2.0, 2.0, 5.0]
        assert [s.offset for s in ts] == [4.0, 9.0, 1.0, 0.0]

    def test_example5_shape(self):
        ts = example5_taskset()
        assert ts["TH"].priority > ts["TL"].priority
        assert ts["TH"].read_set == frozenset({"y"})
        assert ts["TL"].write_set == frozenset({"y"})

    def test_fixtures_are_fresh_objects(self):
        assert example1_taskset() is not example1_taskset()


class TestGenerator:
    def test_deterministic_for_same_seed(self):
        a = generate_taskset(WorkloadConfig(seed=42))
        b = generate_taskset(WorkloadConfig(seed=42))
        assert a.describe() == b.describe()

    def test_different_seeds_differ(self):
        a = generate_taskset(WorkloadConfig(seed=1))
        b = generate_taskset(WorkloadConfig(seed=2))
        assert a.describe() != b.describe()

    def test_sizes_respected(self):
        config = WorkloadConfig(n_transactions=8, n_items=4, seed=0)
        ts = generate_taskset(config)
        assert len(ts) == 8
        assert all(item.startswith("d") for item in ts.items)
        assert all(int(item[1:]) < 4 for item in ts.items)

    def test_generated_sets_validate(self):
        for seed in range(10):
            ts = generate_taskset(WorkloadConfig(seed=seed))
            validate_taskset(ts, require_periods=True)

    def test_rate_monotonic_priorities(self):
        ts = generate_taskset(WorkloadConfig(n_transactions=6, seed=3))
        ordered = sorted(ts, key=lambda s: -(s.priority or 0))
        periods = [s.period for s in ordered]
        assert periods == sorted(periods)

    def test_target_utilization_hit(self):
        for target in (0.3, 0.5, 0.7):
            ts = generate_taskset(
                WorkloadConfig(seed=5, target_utilization=target)
            )
            assert ts.total_utilization() == pytest.approx(target, rel=0.15)

    def test_no_per_transaction_overload(self):
        ts = generate_taskset(
            WorkloadConfig(seed=9, target_utilization=0.9, n_transactions=3)
        )
        for spec in ts:
            assert spec.execution_time <= spec.period

    def test_write_probability_extremes(self):
        read_only = generate_taskset(
            WorkloadConfig(seed=1, write_probability=0.0)
        )
        assert all(not s.write_set for s in read_only)
        write_heavy = generate_taskset(
            WorkloadConfig(seed=1, write_probability=1.0)
        )
        assert all(not s.read_set for s in write_heavy)

    def test_invalid_configs_rejected(self):
        with pytest.raises(SpecificationError):
            WorkloadConfig(n_transactions=0)
        with pytest.raises(SpecificationError):
            WorkloadConfig(n_items=0)
        with pytest.raises(SpecificationError):
            WorkloadConfig(ops_per_txn=(3, 2))
        with pytest.raises(SpecificationError):
            WorkloadConfig(write_probability=1.5)
        with pytest.raises(SpecificationError):
            WorkloadConfig(target_utilization=0.0)

    def test_hyperperiod_stays_finite(self):
        ts = generate_taskset(WorkloadConfig(seed=4, n_transactions=6))
        hp = ts.hyperperiod()
        assert hp is not None
        assert hp <= 480.0 * 3  # period choices are near-harmonic

    def test_rmw_produces_read_write_pairs(self):
        ts = generate_taskset(
            WorkloadConfig(
                seed=8, n_transactions=8, write_probability=0.8,
                rmw_probability=1.0,
            )
        )
        pairs = 0
        for spec in ts:
            for earlier, later in zip(spec.operations, spec.operations[1:]):
                if (
                    earlier.kind.value == "read"
                    and later.kind.value == "write"
                    and earlier.item == later.item
                ):
                    pairs += 1
        assert pairs > 0

    def test_rmw_workloads_keep_pcp_da_guarantees(self):
        from repro.engine.simulator import SimConfig, Simulator
        from repro.protocols import make_protocol
        from repro.verify import verify_pcp_da_run

        for seed in range(6):
            ts = generate_taskset(
                WorkloadConfig(
                    seed=seed, write_probability=0.6, rmw_probability=0.7,
                    hot_access_probability=0.9,
                )
            )
            result = Simulator(
                ts, make_protocol("pcp-da"), SimConfig(horizon=600.0)
            ).run()
            verify_pcp_da_run(result)

    def test_invalid_rmw_rejected(self):
        with pytest.raises(SpecificationError):
            WorkloadConfig(rmw_probability=1.5)
