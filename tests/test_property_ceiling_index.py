"""Property test: the incremental ceiling index equals a from-scratch
rescan after *every* grant and release of a random lock schedule.

The :class:`CeilingIndex` is the "bump on grant, lazy-max-repair on
release" structure behind the protocols' ``Sysceil`` queries.  Its
maintenance contract is easy to get subtly wrong (stale heap entries,
exclusion sets, items whose ceiling is the dummy level), so this test
drives a raw :class:`LockTable` through arbitrary grant/release toggles
and re-derives the answer by brute force at each step — for each of the
three level semantics the protocols attach (PCP-DA read ceilings, RW-PCP
runtime r/w ceilings, original-PCP access ceilings) and under several
exclusion sets.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ceilings import CeilingTable
from repro.core.locking_conditions import make_read_ceiling_index
from repro.engine.job import Job
from repro.engine.lock_table import CeilingIndex, LockTable
from repro.model.priorities import assign_by_order
from repro.model.spec import DUMMY_PRIORITY, LockMode, read, write
from repro.model.spec import TransactionSpec

_ITEMS = ("a", "b", "c", "d")


def _fixture():
    """Four jobs with overlapping read/write sets, plus their ceilings."""
    specs = [
        TransactionSpec("T1", (read("a"), write("b"))),
        TransactionSpec("T2", (write("a"), read("c"))),
        TransactionSpec("T3", (read("b"), write("c"), read("d"))),
        TransactionSpec("T4", (read("a"), read("d"))),  # d is never written
    ]
    taskset = assign_by_order(specs)
    ceilings = CeilingTable(taskset)
    jobs = tuple(Job(spec, 0, 0.0) for spec in taskset)
    return ceilings, jobs


def _make_index(kind: str, ceilings: CeilingTable) -> CeilingIndex:
    if kind == "pcpda-read":
        return make_read_ceiling_index(ceilings)
    if kind == "rwceil":
        def level_of(item, entry):
            level = (
                ceilings.aceil(item) if entry.writers else ceilings.wceil(item)
            )
            return None if level == DUMMY_PRIORITY else level
        return CeilingIndex(kind, level_of)
    assert kind == "aceil"

    def level_of(item, entry):
        level = ceilings.aceil(item)
        return None if level == DUMMY_PRIORITY else level
    return CeilingIndex(kind, level_of)


def _reference_scan(table, index, excluded):
    """Brute-force recomputation of ``index.scan(excluded)``."""
    best = None
    items = []
    for item, entry in table.all_entries().items():
        level = index._level_of(item, entry)
        if level is None:
            continue
        jobs = entry.readers if index._select_readers else entry.holders
        if not any(j not in excluded for j in jobs):
            continue
        if best is None or level > best:
            best, items = level, [item]
        elif level == best:
            items.append(item)
    return best, sorted(items)


@st.composite
def lock_schedules(draw):
    """A sequence of (job index, item, mode) toggles: grant when the lock
    is not held, release when it is."""
    n = draw(st.integers(min_value=1, max_value=30))
    return [
        (
            draw(st.integers(min_value=0, max_value=3)),
            draw(st.sampled_from(_ITEMS)),
            draw(st.sampled_from([LockMode.READ, LockMode.WRITE])),
        )
        for _ in range(n)
    ]


@pytest.mark.parametrize("kind", ["pcpda-read", "rwceil", "aceil"])
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(schedule=lock_schedules())
def test_incremental_ceiling_equals_rescan_after_every_step(kind, schedule):
    ceilings, jobs = _fixture()
    table = LockTable()
    index = table.attach_ceiling_index(_make_index(kind, ceilings))
    exclusion_sets = [
        frozenset(),
        frozenset({jobs[0]}),
        frozenset({jobs[1], jobs[2]}),
        frozenset(jobs),
    ]
    for job_idx, item, mode in schedule:
        job = jobs[job_idx]
        if table.holds(job, item, mode):
            table.release(job, item, mode)
        else:
            table.grant(job, item, mode)
        index.self_check()
        for excluded in exclusion_sets:
            level, items = index.scan(excluded)
            assert (level, sorted(items)) == _reference_scan(
                table, index, excluded
            ), f"diverged after toggling {job.name}/{item}/{mode}"
            assert index.max_level(excluded) == level
        # The scan must restore every live entry it consumed: a second
        # query right away has to see the same world.
        level0, items0 = index.scan(frozenset())
        assert (level0, sorted(items0)) == _reference_scan(
            table, index, frozenset()
        )


def test_release_all_keeps_index_current():
    """``release_all`` (the commit path) goes through ``release`` and must
    leave the index consistent too."""
    ceilings, jobs = _fixture()
    table = LockTable()
    index = table.attach_ceiling_index(_make_index("rwceil", ceilings))
    table.grant(jobs[0], "a", LockMode.READ)
    table.grant(jobs[0], "b", LockMode.WRITE)
    table.grant(jobs[1], "a", LockMode.WRITE)
    index.self_check()
    table.release_all(jobs[0])
    index.self_check()
    level, items = index.scan(frozenset())
    assert items == ["a"]
    assert level == ceilings.aceil("a")
    table.release_all(jobs[1])
    index.self_check()
    assert index.scan(frozenset()) == (None, [])


def test_attach_rebuilds_from_live_entries():
    """Attaching an index to a table that already has grants must pick
    them up (the simulator attaches at bind time, but tests may not)."""
    ceilings, jobs = _fixture()
    table = LockTable()
    table.grant(jobs[2], "c", LockMode.WRITE)
    index = table.attach_ceiling_index(_make_index("aceil", ceilings))
    index.self_check()
    assert index.max_level(frozenset()) == ceilings.aceil("c")
    assert index.max_level(frozenset({jobs[2]})) is None
