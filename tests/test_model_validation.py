"""Unit tests for task-set validation (repro.model.validation)."""

import pytest

from repro.exceptions import SpecificationError
from repro.model.spec import TaskSet, TransactionSpec, read
from repro.model.validation import validate_taskset


def _ts(**kwargs):
    defaults = dict(priority=1, period=10.0)
    defaults.update(kwargs)
    return TaskSet([TransactionSpec("T", (read("x"),), **defaults)])


class TestValidateTaskset:
    def test_valid_set_passes(self):
        validate_taskset(_ts())

    def test_missing_priorities_flagged(self):
        ts = TaskSet([TransactionSpec("T", (read("x"),), period=10.0)])
        with pytest.raises(SpecificationError, match="without a priority"):
            validate_taskset(ts)

    def test_priorities_not_required_when_disabled(self):
        ts = TaskSet([TransactionSpec("T", (read("x"),), period=10.0)])
        validate_taskset(ts, require_priorities=False)

    def test_aperiodic_flagged_when_periods_required(self):
        ts = TaskSet([TransactionSpec("T", (read("x"),), priority=1)])
        with pytest.raises(SpecificationError, match="aperiodic"):
            validate_taskset(ts, require_periods=True)

    def test_aperiodic_ok_by_default(self):
        ts = TaskSet([TransactionSpec("T", (read("x"),), priority=1)])
        validate_taskset(ts)

    def test_deadline_beyond_period_flagged(self):
        ts = _ts(deadline=None)
        validate_taskset(ts)
        bad = TaskSet([
            TransactionSpec(
                "T", (read("x"),), priority=1, period=10.0, deadline=12.0
            )
        ])
        with pytest.raises(SpecificationError, match="deadline"):
            validate_taskset(bad)

    def test_execution_beyond_period_flagged(self):
        bad = TaskSet([
            TransactionSpec("T", (read("x", 11.0),), priority=1, period=10.0)
        ])
        with pytest.raises(SpecificationError, match="never be schedulable"):
            validate_taskset(bad)

    def test_multiple_problems_reported_together(self):
        bad = TaskSet([
            TransactionSpec("A", (read("x", 11.0),), priority=2, period=10.0),
            TransactionSpec("B", (read("y", 99.0),), priority=1, period=10.0),
        ])
        with pytest.raises(SpecificationError) as exc:
            validate_taskset(bad)
        message = str(exc.value)
        assert "A:" in message and "B:" in message
