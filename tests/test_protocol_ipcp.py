"""Behavioural tests for the immediate priority ceiling protocol."""

import pytest

from repro.engine.simulator import SimConfig, Simulator
from repro.model.priorities import assign_by_order
from repro.model.spec import TransactionSpec, compute, read, write
from repro.protocols import make_protocol
from repro.verify import assert_deadlock_free, assert_serializable
from tests.conftest import run


def _ts(*specs):
    return assign_by_order(list(specs))


class TestCeilingElevation:
    def test_holder_runs_at_item_ceiling(self):
        # L locks x (Aceil = P_H); while holding it, an arriving mid
        # transaction (priority between L and H) cannot preempt.
        ts = _ts(
            TransactionSpec("H", (read("x", 1.0),), offset=9.0),
            TransactionSpec("M", (compute(1.0),), offset=1.0),
            TransactionSpec("L", (read("x", 3.0),), offset=0.0),
        )
        result = run(ts, "ipcp")
        # L runs 0-3 elevated to Aceil(x) = P_H; M waits until 3.
        assert result.job("L#0").finish_time == 3.0
        assert result.job("M#0").finish_time == 4.0
        assert result.job("M#0").total_blocking_time() == 0.0  # interference

    def test_elevation_drops_at_commit(self):
        ts = _ts(
            TransactionSpec("H", (read("x", 1.0),), offset=9.0),
            TransactionSpec("M", (compute(2.0),), offset=1.0),
            TransactionSpec("L", (read("x", 1.0), compute(2.0)), offset=0.0),
        )
        result = run(ts, "ipcp")
        # L holds x only 0-1 (its read op)... locks are held to commit
        # under IPCP-as-implemented (lock-until-commit), so L stays
        # elevated until its commit at 3; M then runs.
        assert result.job("L#0").finish_time == 3.0
        assert result.job("M#0").finish_time == 5.0

    def test_lock_requests_never_denied_on_single_cpu(self):
        from repro.trace.recorder import LockOutcome

        ts = _ts(
            TransactionSpec("H", (read("y", 1.0), write("x", 1.0)), offset=1.0),
            TransactionSpec("L", (read("x", 2.0), write("y", 1.0)), offset=0.0),
        )
        result = run(ts, "ipcp")
        denied = [
            e for e in result.trace.lock_events
            if e.outcome is LockOutcome.DENIED
        ]
        assert denied == []
        assert_deadlock_free(result)
        assert_serializable(result)

    def test_zero_lock_blocking_by_construction(self):
        for seed in range(6):
            from repro.workloads.generator import WorkloadConfig, generate_taskset

            ts = generate_taskset(
                WorkloadConfig(n_transactions=5, n_items=5, seed=seed,
                               write_probability=0.5,
                               hot_access_probability=0.9)
            )
            result = Simulator(
                ts, make_protocol("ipcp"), SimConfig(horizon=600.0)
            ).run()
            assert all(not j.block_intervals for j in result.jobs)
            assert_serializable(result)

    def test_equivalent_outcome_to_original_pcp_on_example1(self, ex1):
        """IPCP and PCP give T1 the same completion on Example 1: the
        mechanism differs (elevation vs inheritance) but the worst case
        agrees."""
        ipcp = run(ex1, "ipcp")
        pcp = run(ex1, "pcp")
        assert (
            ipcp.job("T1#0").finish_time == pcp.job("T1#0").finish_time == 4.0
        )

    def test_system_ceiling_reflects_held_items(self, ex4):
        result = run(ex4, "ipcp")
        from repro.trace.sysceil import SysceilTrace

        trace = SysceilTrace.from_result(result)
        assert trace.max_level >= 3  # y's ceiling (P2) while T4 holds it
