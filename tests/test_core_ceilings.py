"""Unit tests for static ceiling tables (repro.core.ceilings)."""

import pytest

from repro.core.ceilings import CeilingTable
from repro.exceptions import SpecificationError
from repro.model.priorities import assign_by_order
from repro.model.spec import DUMMY_PRIORITY, TaskSet, TransactionSpec, read, write
from repro.workloads.examples import example1_taskset, example4_taskset


class TestCeilingTable:
    def test_example1_ceilings(self):
        """Example 1: Aceil(x) = P1 (T1 reads, T3 writes); y only read."""
        ceilings = CeilingTable(example1_taskset())
        p1, p3 = 3, 1
        assert ceilings.aceil("x") == p1
        assert ceilings.wceil("x") == p3  # only T3 writes x
        assert ceilings.wceil("y") == DUMMY_PRIORITY  # nobody writes y
        assert ceilings.aceil("y") == 2  # P2 reads y

    def test_example4_write_ceilings(self):
        """Example 4's ceilings, derived from the declared write sets.

        The OCR'd paper text lists "Wceil(x) = P1", which contradicts the
        paper's own definition (only T4 writes x, so Wceil(x) = P4) *and*
        the narrated execution: with Wceil(x) = P1 in effect while T1
        read-locks x at t=4-6, Max_Sysceil would reach P1 under PCP-DA,
        but Section 6 says it stays at P2.  We therefore derive Wceil
        strictly from the write sets (DESIGN.md §2), which reproduces
        Figure 4 exactly.
        """
        ceilings = CeilingTable(example4_taskset())
        p1, p2, p3, p4 = 4, 3, 2, 1
        assert ceilings.wceil("x") == p4  # written by T4
        assert ceilings.wceil("y") == p2  # written by T2
        assert ceilings.wceil("z") == p3  # written by T3

    def test_unknown_item_gets_dummy(self):
        ceilings = CeilingTable(example1_taskset())
        assert ceilings.wceil("nope") == DUMMY_PRIORITY
        assert ceilings.aceil("nope") == DUMMY_PRIORITY

    def test_hpw_is_wceil(self):
        ceilings = CeilingTable(example4_taskset())
        for item in ("x", "y", "z"):
            assert ceilings.hpw(item) == ceilings.wceil(item)

    def test_requires_priorities(self):
        ts = TaskSet([TransactionSpec("T", (read("x"),))])
        with pytest.raises(SpecificationError):
            CeilingTable(ts)

    def test_max_over_writers(self):
        ts = assign_by_order([
            TransactionSpec("H", (write("x"),)),
            TransactionSpec("L", (write("x"),)),
        ])
        ceilings = CeilingTable(ts)
        assert ceilings.wceil("x") == ts.priority_of("H")

    def test_as_mapping_and_describe(self):
        ceilings = CeilingTable(example4_taskset())
        mapping = ceilings.as_mapping()
        assert set(mapping) == {"x", "y", "z"}
        assert mapping["y"] == (3, 3)
        text = ceilings.describe()
        assert "Wceil" in text and "z" in text

    def test_items_property(self):
        ceilings = CeilingTable(example1_taskset())
        assert ceilings.items == frozenset({"x", "y"})
