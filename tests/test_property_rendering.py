"""Property-based robustness tests for rendering and export.

Whatever the workload and protocol, the renderers must produce
well-formed output and the exports must round-trip through their formats
without loss of the load-bearing fields.
"""

import csv
import io
import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.simulator import SimConfig, Simulator
from repro.protocols import make_protocol
from repro.trace.export import (
    metrics_to_csv,
    result_to_dict,
    result_to_json,
    segments_to_csv,
    sysceil_to_csv,
)
from repro.trace.gantt import render_gantt
from repro.trace.timeline import build_timeline
from repro.workloads.io import taskset_from_dict, taskset_to_dict
from tests.test_property_protocols import one_shot_tasksets

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_PROTOCOL = st.sampled_from(["pcp-da", "rw-pcp", "ccp", "2pl-hp", "ipcp"])


@_SETTINGS
@given(one_shot_tasksets(), _PROTOCOL)
def test_gantt_renders_every_run(taskset, protocol):
    result = Simulator(
        taskset, make_protocol(protocol),
        SimConfig(deadlock_action="abort_lowest"),
    ).run()
    text = render_gantt(result)
    lines = text.splitlines()
    # Every transaction appears as a row and the legend is present.
    for spec in taskset:
        assert any(line.startswith(spec.name) for line in lines)
    assert "#=executing" in text


@_SETTINGS
@given(one_shot_tasksets(), _PROTOCOL)
def test_timeline_segments_are_well_formed(taskset, protocol):
    result = Simulator(
        taskset, make_protocol(protocol),
        SimConfig(deadlock_action="abort_lowest"),
    ).run()
    timeline = build_timeline(result)
    for jt in timeline.jobs:
        previous_end = None
        for seg in jt.segments:
            assert seg.end > seg.start
            if previous_end is not None:
                assert seg.start >= previous_end - 1e-9
            previous_end = seg.end


@_SETTINGS
@given(one_shot_tasksets(), _PROTOCOL)
def test_json_export_is_loadable_and_complete(taskset, protocol):
    result = Simulator(
        taskset, make_protocol(protocol),
        SimConfig(deadlock_action="abort_lowest"),
    ).run()
    doc = json.loads(result_to_json(result))
    assert doc["protocol"] == protocol
    assert {t["name"] for t in doc["transactions"]} == set(taskset.names)
    assert len(doc["jobs"]) == len(result.jobs)
    reconstructed = result_to_dict(result)
    assert doc == json.loads(json.dumps(reconstructed))


@_SETTINGS
@given(one_shot_tasksets(), _PROTOCOL)
def test_csv_exports_parse(taskset, protocol):
    result = Simulator(
        taskset, make_protocol(protocol),
        SimConfig(deadlock_action="abort_lowest"),
    ).run()
    for text in (
        segments_to_csv(result), sysceil_to_csv(result), metrics_to_csv(result)
    ):
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows is not None  # parseable; may legitimately be empty


@_SETTINGS
@given(one_shot_tasksets())
def test_taskset_json_round_trip(taskset):
    doc = taskset_to_dict(taskset)
    json.dumps(doc)
    loaded = taskset_from_dict(doc)
    assert loaded.describe() == taskset.describe()
    for spec in taskset:
        assert loaded[spec.name].operations == spec.operations
