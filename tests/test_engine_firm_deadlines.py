"""Tests for the firm-deadline policy and scheduling overheads."""

import pytest

from repro.core.pcp_da import PCPDA
from repro.engine.job import JobState
from repro.engine.simulator import SimConfig, Simulator
from repro.exceptions import SpecificationError
from repro.model.priorities import assign_by_order
from repro.model.spec import TransactionSpec, compute, read, write
from repro.protocols import make_protocol
from repro.trace.metrics import compute_metrics
from repro.trace.recorder import SchedEventKind


class TestFirmDeadlines:
    def _overloaded(self):
        a = TransactionSpec("A", (compute(3.0),), period=4.0)
        b = TransactionSpec("B", (compute(2.0),), period=4.0, deadline=3.0)
        return assign_by_order([a, b])

    def test_job_dropped_at_deadline(self):
        ts = self._overloaded()
        result = Simulator(
            ts, PCPDA(), SimConfig(horizon=8.0, on_miss="abort")
        ).run()
        b0 = result.job("B#0")
        assert b0.state is JobState.DROPPED
        assert b0.finish_time is None
        assert b0.missed_deadline
        misses = [
            e for e in result.trace.sched_events
            if e.kind is SchedEventKind.MISS and e.job == "B#0"
        ]
        assert misses and misses[0].time == 3.0

    def test_drop_frees_the_cpu_for_later_jobs(self):
        ts = self._overloaded()
        firm = Simulator(
            ts, PCPDA(), SimConfig(horizon=8.0, on_miss="abort")
        ).run()
        # With B#0 dropped at 3, B#1 (released 4, deadline 7) gets the CPU
        # window 7-8 after A#1... A#1 runs 4-7, B#1 would be dropped at 7
        # too; key point: the drop happens and the set keeps running.
        soft = Simulator(ts, PCPDA(), SimConfig(horizon=8.0)).run()
        assert firm.job("B#0").state is JobState.DROPPED
        assert soft.job("B#0").state is JobState.COMMITTED

    def test_dropped_job_releases_its_locks(self):
        # L holds a read lock past its deadline; dropping it unblocks W.
        w = TransactionSpec("W", (write("x", 1.0),), offset=1.0)
        l = TransactionSpec(
            "L", (read("x", 6.0),), period=8.0, deadline=3.0, offset=0.0
        )
        ts = assign_by_order([w, l])
        result = Simulator(
            ts, PCPDA(), SimConfig(horizon=8.0, on_miss="abort")
        ).run()
        assert result.job("L#0").state is JobState.DROPPED
        # W blocked at 1 (read lock on x), freed by the drop at 3.
        wj = result.job("W#0")
        assert wj.finish_time == 4.0
        assert wj.total_blocking_time() == 2.0

    def test_dropped_jobs_do_not_pollute_serializability(self):
        w = TransactionSpec("W", (write("x", 1.0),), offset=1.0)
        l = TransactionSpec(
            "L", (read("x", 6.0), write("y", 1.0)), period=8.0,
            deadline=3.0, offset=0.0,
        )
        ts = assign_by_order([w, l])
        result = Simulator(
            ts, PCPDA(), SimConfig(horizon=8.0, on_miss="abort")
        ).run()
        graph = result.check_serializable()
        assert "L#0" not in graph.nodes or not graph.successors("L#0")
        assert "L#0" in result.history.aborted_jobs

    def test_commit_exactly_at_deadline_meets_it(self):
        a = TransactionSpec("A", (compute(3.0),), period=4.0, deadline=3.0)
        ts = assign_by_order([a])
        result = Simulator(
            ts, PCPDA(), SimConfig(horizon=4.0, on_miss="abort")
        ).run()
        assert result.job("A#0").state is JobState.COMMITTED
        assert result.job("A#0").finish_time == 3.0

    def test_firm_policy_requires_deferred_updates(self):
        ts = self._overloaded()
        with pytest.raises(SpecificationError, match="firm deadlines"):
            Simulator(
                ts, make_protocol("rw-pcp"),
                SimConfig(horizon=8.0, on_miss="abort"),
            )

    def test_invalid_policy_rejected(self):
        with pytest.raises(SpecificationError):
            SimConfig(on_miss="explode")


class TestOverheads:
    def test_lock_overhead_lengthens_operations(self):
        t = TransactionSpec("T", (read("x", 1.0), write("y", 1.0)))
        ts = assign_by_order([t])
        plain = Simulator(ts, PCPDA()).run()
        costly = Simulator(ts, PCPDA(), SimConfig(lock_overhead=0.25)).run()
        assert plain.job("T#0").finish_time == 2.0
        assert costly.job("T#0").finish_time == pytest.approx(2.5)  # 2 locks

    def test_compute_ops_pay_no_lock_overhead(self):
        t = TransactionSpec("T", (compute(2.0),))
        ts = assign_by_order([t])
        result = Simulator(ts, PCPDA(), SimConfig(lock_overhead=0.5)).run()
        assert result.job("T#0").finish_time == 2.0

    def test_context_switch_overhead_on_preemption(self):
        high = TransactionSpec("H", (compute(1.0),), offset=1.0)
        low = TransactionSpec("L", (compute(4.0),), offset=0.0)
        ts = assign_by_order([high, low])
        result = Simulator(
            ts, PCPDA(), SimConfig(context_switch_overhead=0.5)
        ).run()
        # L runs 0-1; switch to H costs 0.5 -> H finishes at 2.5; the
        # resume of L after H's commit is not a preemptive switch.
        assert result.job("H#0").finish_time == pytest.approx(2.5)
        assert result.job("L#0").finish_time == pytest.approx(5.5)

    def test_negative_overhead_rejected(self):
        with pytest.raises(SpecificationError):
            SimConfig(lock_overhead=-0.1)

    def test_overheads_degrade_schedulability_gracefully(self):
        from repro.workloads.generator import WorkloadConfig, generate_taskset

        ts = generate_taskset(
            WorkloadConfig(n_transactions=5, seed=2, target_utilization=0.6)
        )
        plain = compute_metrics(Simulator(ts, PCPDA(), SimConfig()).run())
        heavy = compute_metrics(
            Simulator(
                ts, PCPDA(),
                SimConfig(lock_overhead=0.5, context_switch_overhead=0.5),
            ).run()
        )
        assert heavy.mean_response_time >= plain.mean_response_time
