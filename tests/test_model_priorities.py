"""Unit tests for priority assignment (repro.model.priorities)."""

import pytest

from repro.exceptions import SpecificationError
from repro.model.priorities import assign_by_order, assign_rate_monotonic
from repro.model.spec import TaskSet, TransactionSpec, read


def _spec(name, period=None, offset=0.0):
    return TransactionSpec(name, (read("x"),), period=period, offset=offset)


class TestRateMonotonic:
    def test_shorter_period_gets_higher_priority(self):
        ts = TaskSet([_spec("slow", 20.0), _spec("fast", 5.0), _spec("mid", 10.0)])
        assigned = assign_rate_monotonic(ts)
        assert assigned.priority_of("fast") == 3
        assert assigned.priority_of("mid") == 2
        assert assigned.priority_of("slow") == 1

    def test_tie_broken_by_name(self):
        ts = TaskSet([_spec("B", 10.0), _spec("A", 10.0)])
        assigned = assign_rate_monotonic(ts)
        assert assigned.priority_of("A") > assigned.priority_of("B")

    def test_requires_periods(self):
        ts = TaskSet([_spec("A")])
        with pytest.raises(SpecificationError):
            assign_rate_monotonic(ts)

    def test_taskset_method_delegates(self):
        ts = TaskSet([_spec("A", 5.0), _spec("B", 10.0)])
        assigned = ts.with_rate_monotonic_priorities()
        assert assigned.priority_of("A") == 2

    def test_priorities_form_total_order(self):
        ts = TaskSet([_spec(f"T{i}", float(10 + i)) for i in range(6)])
        assigned = assign_rate_monotonic(ts)
        priorities = sorted(s.priority for s in assigned)
        assert priorities == [1, 2, 3, 4, 5, 6]


class TestAssignByOrder:
    def test_first_is_highest(self):
        ts = assign_by_order([_spec("T1"), _spec("T2"), _spec("T3")])
        assert ts.priority_of("T1") == 3
        assert ts.priority_of("T2") == 2
        assert ts.priority_of("T3") == 1

    def test_empty_rejected(self):
        with pytest.raises(SpecificationError):
            assign_by_order([])

    def test_result_ordered_descending(self):
        ts = assign_by_order([_spec("T1"), _spec("T2")])
        assert ts.names == ("T1", "T2")
