"""Unit tests for task-set JSON serialisation (repro.workloads.io)."""

import json

import pytest

from repro.exceptions import SpecificationError
from repro.workloads.examples import example4_taskset
from repro.workloads.generator import WorkloadConfig, generate_taskset
from repro.workloads.io import (
    dump_taskset,
    load_taskset,
    taskset_from_dict,
    taskset_to_dict,
)

_DOC = {
    "priority_policy": "by-order",
    "transactions": [
        {
            "name": "T1",
            "period": 5.0,
            "offset": 1.0,
            "operations": [
                {"op": "read", "item": "x", "duration": 1.0},
                {"op": "read", "item": "y"},
            ],
        },
        {
            "name": "T2",
            "operations": [
                {"op": "write", "item": "x", "duration": 1.0},
                {"op": "compute", "duration": 2.0},
                {"op": "write", "item": "y", "duration": 2.0},
            ],
        },
    ],
}


class TestFromDict:
    def test_by_order_policy(self):
        ts = taskset_from_dict(_DOC)
        assert ts.priority_of("T1") == 2
        assert ts.priority_of("T2") == 1
        assert ts["T1"].period == 5.0
        assert ts["T2"].execution_time == 5.0

    def test_default_duration_is_one(self):
        ts = taskset_from_dict(_DOC)
        assert ts["T1"].operations[1].duration == 1.0

    def test_rate_monotonic_policy(self):
        doc = {
            "priority_policy": "rate-monotonic",
            "transactions": [
                {"name": "slow", "period": 20.0,
                 "operations": [{"op": "compute", "duration": 1.0}]},
                {"name": "fast", "period": 5.0,
                 "operations": [{"op": "compute", "duration": 1.0}]},
            ],
        }
        ts = taskset_from_dict(doc)
        assert ts.priority_of("fast") > ts.priority_of("slow")

    def test_explicit_policy_requires_priorities(self):
        doc = {
            "transactions": [
                {"name": "T", "operations": [{"op": "compute", "duration": 1.0}]},
            ],
        }
        with pytest.raises(SpecificationError, match="explicit"):
            taskset_from_dict(doc)

    def test_priority_conflicts_with_policy(self):
        doc = {
            "priority_policy": "by-order",
            "transactions": [
                {"name": "T", "priority": 3,
                 "operations": [{"op": "compute", "duration": 1.0}]},
            ],
        }
        with pytest.raises(SpecificationError, match="conflicts"):
            taskset_from_dict(doc)

    def test_unknown_policy_rejected(self):
        with pytest.raises(SpecificationError, match="priority_policy"):
            taskset_from_dict({"priority_policy": "magic", "transactions": []})

    def test_unknown_op_rejected(self):
        doc = {
            "priority_policy": "by-order",
            "transactions": [
                {"name": "T", "operations": [{"op": "wiggle", "duration": 1.0}]},
            ],
        }
        with pytest.raises(SpecificationError, match="unknown operation"):
            taskset_from_dict(doc)

    def test_missing_transactions_rejected(self):
        with pytest.raises(SpecificationError, match="transactions"):
            taskset_from_dict({})


class TestRoundTrip:
    def test_example4_round_trips(self, tmp_path):
        original = example4_taskset()
        path = tmp_path / "ts.json"
        dump_taskset(original, str(path))
        loaded = load_taskset(str(path))
        assert loaded.describe() == original.describe()
        for spec in original:
            copy = loaded[spec.name]
            assert copy.operations == spec.operations
            assert copy.priority == spec.priority
            assert copy.offset == spec.offset

    def test_generated_sets_round_trip(self, tmp_path):
        for seed in range(5):
            original = generate_taskset(WorkloadConfig(seed=seed))
            path = tmp_path / f"ts{seed}.json"
            dump_taskset(original, str(path))
            assert load_taskset(str(path)).describe() == original.describe()

    def test_dict_round_trip_preserves_json_compat(self):
        doc = taskset_to_dict(example4_taskset())
        json.dumps(doc)  # must be serialisable
        assert taskset_from_dict(doc).names == example4_taskset().names

    def test_invalid_json_reported_with_path(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(SpecificationError, match="bad.json"):
            load_taskset(str(path))


class TestCLISimulate:
    def test_simulate_command(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "ts.json"
        dump_taskset(example4_taskset(), str(path))
        assert main(["simulate", str(path), "--protocol", "pcp-da"]) == 0
        out = capsys.readouterr().out
        assert "history is serializable" in out
        assert "T4#0" in out

    def test_simulate_firm_mode(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "ts.json"
        dump_taskset(example4_taskset(), str(path))
        assert main(["simulate", str(path), "--firm"]) == 0
        assert "committed" in capsys.readouterr().out
