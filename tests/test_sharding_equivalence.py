"""Differential battery: 1-shard sharded service ≡ the unsharded manager.

The coordinator's claim (see ``repro/service/sharding/coordinator.py``)
is that on a single-shard deployment every added mechanism vanishes: the
remote order-guard remainder is empty by construction, the single-leg
commit fast path delegates wholesale, and the cross-shard deadlock
detector defers to the shard's own.  These tests pin that from the
outside: the same deterministic script of begins/reads/writes/commits is
played against a bare :class:`LockManager` and a 1-shard
:class:`ShardedLockManager`, under every registered protocol, and the
observable logs must be *identical* — per-operation immediate outcome
(granted now vs parked), read values, exception types, install sets,
final per-item version chains, committed sets, and the shard's
grant/denial counters.

The script generator draws choices from a seeded RNG and consults only
*observable* state (which sessions are live, which have a parked
operation), so as long as the two systems behave identically the two
runs make identical draws — and the first behavioral divergence shows up
as a log mismatch rather than silent drift.
"""

import asyncio
import random

import pytest

from repro.db.serializability import check_serializable
from repro.exceptions import ServiceError
from repro.model.spec import OpKind
from repro.service import LockManager, ServiceConfig, ShardedLockManager
from repro.service.loadgen import history_from_events
from repro.service.manager import SessionState
from repro.workloads.generator import WorkloadConfig, generate_taskset

PROTOCOLS = ("pcp-da", "pcp", "rw-pcp", "ipcp", "2pl", "2pl-hp", "occ-bc")

SEED_PAIRS = ((3, 1), (11, 2))


def run(coro):
    return asyncio.run(coro)


async def settle(steps: int = 20) -> None:
    """Generous quiesce: the sharded path adds a few microtask hops per
    forwarded operation, so 'granted now' needs headroom to look
    identical on both sides."""
    for _ in range(steps):
        await asyncio.sleep(0)


def _outcome(task: "asyncio.Task", kind: str):
    """A comparable terse outcome for a completed operation task."""
    exc = task.exception()
    if exc is not None:
        return ("exc", type(exc).__name__)
    if kind == "read":
        return ("value", task.result())
    if kind == "commit":
        return ("installed", tuple(sorted(task.result()["installed"])))
    return ("ok",)


async def play(manager, catalog, dseed: int, total: int = 16):
    """Play one deterministic script against ``manager``; return the log."""
    rng = random.Random(dseed)
    names = sorted(spec.name for spec in catalog)
    log = []
    active = {}   # session name -> {session, ops, task, taskdesc}
    launched = 0
    while launched < total or active:
        for key in sorted(active):
            entry = active[key]
            task = entry["task"]
            if task is not None and task.done():
                log.append(("late", key, entry["taskdesc"],
                            _outcome(task, entry["taskdesc"][0])))
                entry["task"] = None
        for key in sorted(active):
            entry = active[key]
            if entry["task"] is None and not entry["session"].state.live:
                log.append(("gone", key, entry["session"].state.value))
                del active[key]
        ready = [key for key in sorted(active)
                 if active[key]["task"] is None
                 and active[key]["session"].state is SessionState.ACTIVE]
        choices = []
        if launched < total and len(active) < 4:
            choices.append("begin")
        choices.extend(["step"] * len(ready))
        if not choices:
            # Everything parked: give lock releases wall-clock room.
            await asyncio.sleep(0.002)
            continue
        if rng.choice(choices) == "begin":
            name = rng.choice(names)
            session = await manager.begin(name)
            log.append(("begin", session.name))
            ops = [op for op in catalog[name].operations
                   if op.kind is not OpKind.COMPUTE]
            active[session.name] = {
                "session": session, "ops": ops, "task": None,
                "taskdesc": None,
            }
            launched += 1
            continue
        key = rng.choice(ready)
        entry = active[key]
        session = entry["session"]
        if entry["ops"]:
            op = entry["ops"][0]
            entry["ops"] = entry["ops"][1:]
            if op.kind is OpKind.WRITE:
                desc = ("write", op.item)
                coro = manager.write(session, op.item, f"{key}@{op.item}")
            else:
                desc = ("read", op.item)
                coro = manager.read(session, op.item)
        else:
            desc = ("commit", None)
            coro = manager.commit(session)
        task = asyncio.ensure_future(coro)
        await settle()
        if task.done():
            log.append(("issue", key, desc, _outcome(task, desc[0])))
            task = None
        else:
            log.append(("issue", key, desc, ("parked",)))
        entry["task"] = task
        entry["taskdesc"] = desc
    return log


def _history_rows(manager):
    """(kind, job, item, version_seq) rows, plus the serializability check."""
    if isinstance(manager, ShardedLockManager):
        events = manager.history_events()
        history = history_from_events(events)
        rows = [(e["kind"], e["job"], e["item"], e["version_seq"])
                for e in events]
    else:
        history = manager.history
        rows = [(e.kind.value, e.job, e.item, e.version_seq)
                for e in history]
    check_serializable(history)
    return rows


def _summarize(rows):
    """Order-insensitive invariants: install chains, reads, outcomes."""
    chains = {}
    reads = []
    committed = set()
    aborted = set()
    for kind, job, item, seq in rows:
        if kind == "install":
            chains.setdefault(item, []).append((seq, job))
        elif kind == "read":
            reads.append((job, item, seq))
        elif kind == "commit":
            committed.add(job)
        elif kind == "abort":
            aborted.add(job)
    return (
        {item: sorted(chain) for item, chain in chains.items()},
        sorted(reads),
        committed,
        aborted,
    )


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_one_shard_deployment_is_decision_equivalent(protocol):
    for wseed, dseed in SEED_PAIRS:
        catalog = generate_taskset(WorkloadConfig(
            n_transactions=5, n_items=6, write_probability=0.5,
            rmw_probability=0.25, seed=wseed,
        ))

        async def run_plain():
            manager = LockManager(catalog, protocol, ServiceConfig())
            log = await play(manager, catalog, dseed)
            rows = _history_rows(manager)
            stats = (manager.stats.grants, manager.stats.denials)
            await manager.shutdown()
            return log, rows, stats

        async def run_sharded():
            manager = ShardedLockManager(
                catalog, protocol, ServiceConfig(), shards=1,
            )
            log = await play(manager, catalog, dseed)
            rows = _history_rows(manager)
            shard = manager.shards[0]
            stats = (shard.stats.grants, shard.stats.denials)
            coordinator = manager.sharding_stats
            await manager.shutdown()
            return log, rows, stats, coordinator

        plain_log, plain_rows, plain_stats = run(run_plain())
        shard_log, shard_rows, shard_stats, coordinator = run(run_sharded())

        context = f"protocol={protocol} wseed={wseed} dseed={dseed}"
        assert shard_log == plain_log, context
        assert _summarize(shard_rows) == _summarize(plain_rows), context
        assert shard_stats == plain_stats, context
        # The coordinator machinery must have stayed entirely out of it.
        assert coordinator.guard_waits == 0, context
        assert coordinator.gate_waits == 0, context
        assert coordinator.cross_shard_commits == 0, context
        assert coordinator.cross_shard_deadlocks == 0, context


def test_equivalence_battery_exercises_contention():
    """Meta-check: the scripts actually produce parked operations (the
    interesting case), not just uncontended grants."""
    parked = 0
    for wseed, dseed in SEED_PAIRS:
        catalog = generate_taskset(WorkloadConfig(
            n_transactions=5, n_items=6, write_probability=0.5,
            rmw_probability=0.25, seed=wseed,
        ))

        async def body():
            manager = LockManager(catalog, "2pl", ServiceConfig())
            log = await play(manager, catalog, dseed)
            await manager.shutdown()
            return log

        log = run(body())
        parked += sum(1 for entry in log
                      if entry[0] == "issue" and entry[3] == ("parked",))
    assert parked > 0


def _reap_all(tasks):
    for task in tasks:
        try:
            task.result()
        except ServiceError:
            pass
