"""Differential battery, part 1: golden traces.

The committed hashes in ``tests/golden/engine_trace_hashes.json`` were
produced by the pre-fast-path engine (the one that re-filtered ``jobs``
and rescanned the lock table on every event).  These tests prove the
incremental engine — ready heap, blocked set, ceiling index, rank-at-push
calendar — produces **byte-identical** ``result_to_json`` output on every
corpus case: all protocols, both install policies, firm deadlines,
deadlock handling, and the overhead knobs.
"""

import json

import pytest

from tests.golden_traces import (
    CASE_NAMES,
    CORPUS,
    FULL_TRACE_CASE,
    FULL_TRACE_FILE,
    HASH_FILE,
    load_golden,
    run_case,
    trace_digest,
)

_CASES = {name: (build, proto, config) for name, build, proto, config in CORPUS}
_GOLDEN = load_golden()


def test_corpus_and_golden_file_agree_on_case_names():
    assert set(_GOLDEN) == set(CASE_NAMES), (
        "corpus and golden file diverged; regenerate with "
        "`PYTHONPATH=src python -m tests.golden_traces --write` "
        "(only on an intentional semantic change)"
    )


@pytest.mark.parametrize("kernel", [True, False], ids=["kernel", "object"])
@pytest.mark.parametrize("name", CASE_NAMES)
def test_trace_is_byte_identical_to_seed_engine(name, kernel):
    """Both the array-kernel path and the object reference path must
    reproduce the seed engine's traces byte-for-byte — which also proves
    the two paths identical to *each other* on every corpus case."""
    build, proto, config = _CASES[name]
    live = run_case(name, build, proto, config, kernel=kernel)
    assert trace_digest(live) == _GOLDEN[name], (
        f"{name} (kernel={kernel}): trace diverged from the seed engine "
        f"(see {HASH_FILE} and tests/golden_traces.py)"
    )


def test_full_example_trace_matches_committed_json():
    """One full trace is kept readable so a digest mismatch is diffable."""
    build, proto, config = _CASES[FULL_TRACE_CASE]
    live = run_case(FULL_TRACE_CASE, build, proto, config)
    assert live == FULL_TRACE_FILE.read_text().rstrip("\n")
    # And the readable copy is well-formed JSON, not just a string blob.
    json.loads(live)
