"""Tests for run comparison (repro.trace.compare)."""

import pytest

from repro.engine.simulator import SimConfig
from repro.exceptions import SpecificationError
from repro.trace.compare import compare_runs, render_comparison
from tests.conftest import run


class TestCompareRuns:
    @pytest.fixture
    def comparison(self, ex4):
        rw = run(ex4, "rw-pcp")
        da = run(ex4, "pcp-da")
        return compare_runs(rw, da)

    def test_protocol_names(self, comparison):
        assert comparison.protocol_a == "rw-pcp"
        assert comparison.protocol_b == "pcp-da"

    def test_example4_blocking_deltas(self, comparison):
        t3 = comparison.delta("T3")
        assert t3.blocking_a == 4.0
        assert t3.blocking_b == 0.0
        assert t3.blocking_delta == -4.0
        t1 = comparison.delta("T1")
        assert t1.blocking_delta == -1.0

    def test_example4_response_deltas(self, comparison):
        t3 = comparison.delta("T3")
        # T3: 9-1=8 under RW-PCP, 3-1=2 under PCP-DA.
        assert t3.worst_response_a == 8.0
        assert t3.worst_response_b == 2.0
        assert t3.response_delta == -6.0

    def test_totals(self, comparison):
        assert comparison.total_blocking_a == 5.0
        assert comparison.total_blocking_b == 0.0
        assert comparison.restarts_a == comparison.restarts_b == 0

    def test_missing_transaction_raises(self, comparison):
        with pytest.raises(KeyError):
            comparison.delta("nope")

    def test_different_tasksets_rejected(self, ex1, ex4):
        a = run(ex1, "pcp-da")
        b = run(ex4, "pcp-da")
        with pytest.raises(SpecificationError):
            compare_runs(a, b)

    def test_miss_counting(self, ex3):
        rw = run(ex3, "rw-pcp", SimConfig(horizon=11.0, max_instances=2))
        da = run(ex3, "pcp-da", SimConfig(horizon=11.0, max_instances=2))
        comparison = compare_runs(rw, da)
        assert comparison.delta("T1").misses_a == 1
        assert comparison.delta("T1").misses_b == 0

    def test_restart_counting(self):
        from repro.model.priorities import assign_by_order
        from repro.model.spec import TransactionSpec, read, write

        ts = assign_by_order([
            TransactionSpec("H", (write("x", 1.0),), offset=1.0),
            TransactionSpec("L", (read("x", 3.0),), offset=0.0),
        ])
        hp = run(ts, "2pl-hp")
        da = run(ts, "pcp-da")
        comparison = compare_runs(hp, da)
        assert comparison.delta("L").restarts_a == 1
        assert comparison.delta("L").restarts_b == 0


class TestRenderComparison:
    def test_table_contains_everything(self, ex4):
        comparison = compare_runs(run(ex4, "rw-pcp"), run(ex4, "pcp-da"))
        text = render_comparison(comparison)
        for name in ("T1", "T2", "T3", "T4"):
            assert name in text
        assert "total blocking: 5 (rw-pcp) vs 0 (pcp-da)" in text
